package serve

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Config configures one serving node.
type Config struct {
	Mode       workloads.Mode
	Shards     int           // keyspace partitions (key mod Shards)
	Sets       int           // hash sets per shard
	MaxBatch   int           // ops per batch before forced dispatch
	BatchWait  time.Duration // max wall-clock wait before a partial batch dispatches
	QueueDepth int           // per-shard admission queue (requests)
	Workers    int           // GPU block goroutines per shard (0 = GOMAXPROCS)
	CAPThreads int
	Seed       uint64
	Telemetry  *telemetry.Telemetry // optional; nil disables metrics
}

// Normalize fills zero fields with serving defaults and validates the rest.
func (c *Config) Normalize() error {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Sets == 0 {
		c.Sets = 1 << 10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.CAPThreads == 0 {
		c.CAPThreads = 16
	}
	if c.Shards < 1 || c.Sets < 1 || c.MaxBatch < 1 || c.QueueDepth < 1 || c.BatchWait < 0 {
		return fmt.Errorf("serve: invalid config (shards=%d sets=%d batch=%d queue=%d wait=%s)",
			c.Shards, c.Sets, c.MaxBatch, c.QueueDepth, c.BatchWait)
	}
	if !ModeSupported(c.Mode) {
		return fmt.Errorf("serve: mode %s cannot serve", c.Mode)
	}
	return nil
}

// request is one parsed client operation in flight.
type request struct {
	op   byte // 'S', 'G', 'D'
	key  uint64
	val  uint64
	enq  time.Time
	done chan string // receives exactly one reply line
}

// Server accepts TCP connections speaking a line protocol —
//
//	SET <key> <value>  ->  OK
//	GET <key>          ->  VALUE <value> | NOTFOUND
//	DEL <key>          ->  OK
//	PING               ->  PONG
//
// (keys and values are decimal uint64, >= 1) — and dispatches requests to
// per-shard batch workers. Replies are written in request order per
// connection, each only after its batch's persistence completed.
type Server struct {
	cfg     Config
	workers []*shardWorker

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	draining atomic.Bool

	cRejected *telemetry.Counter
}

// NewServer builds the shards and their batch workers (not yet listening).
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Registry()
	}
	s.cRejected = reg.Counter("serve.rejected")
	for i := 0; i < cfg.Shards; i++ {
		sh, err := NewShard(i, ShardConfig{
			Mode:       cfg.Mode,
			Sets:       cfg.Sets,
			MaxBatch:   cfg.MaxBatch,
			Workers:    cfg.Workers,
			CAPThreads: cfg.CAPThreads,
			Seed:       cfg.Seed + uint64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if cfg.Telemetry != nil {
			sh.Env().Ctx.AttachTelemetry(cfg.Telemetry, fmt.Sprintf("serve/shard%d", i))
		}
		w := newShardWorker(sh, cfg, reg)
		s.workers = append(s.workers, w)
		go w.run()
	}
	return s, nil
}

// Shards exposes the shard stores (for post-drain verification and crash
// testing). Only safe to use after Shutdown has returned.
func (s *Server) Shards() []*Shard {
	out := make([]*Shard, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.shard
	}
	return out
}

// Listen binds addr ("host:port"; port 0 picks a free one) and returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts connections until the listener closes (via Shutdown).
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("serve: Serve before Listen")
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil // closed by Shutdown
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // replies are small lines; Nagle+delayed-ACK adds ~40ms
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, tell every worker to flush
// its pending batch without waiting out the admission deadline, service
// everything already accepted, and stop. Connections still open after
// timeout are force-closed. Safe to call once.
func (s *Server) Shutdown(timeout time.Duration) {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// Release pending batches immediately: replies must not wait on
	// BatchWait once the server is going down.
	for _, w := range s.workers {
		close(w.drainCh)
	}
	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// All connection readers are gone; no more sends into worker queues.
	for _, w := range s.workers {
		close(w.reqs)
	}
	for _, w := range s.workers {
		<-w.done
	}
}

// shardFor routes a key to its partition.
func (s *Server) shardFor(key uint64) *shardWorker {
	return s.workers[key%uint64(len(s.workers))]
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	// Replies go out in request order: the reader enqueues one future per
	// request; the writer resolves them FIFO, so batching across shards
	// cannot reorder a connection's replies.
	futures := make(chan chan string, 2*s.cfg.QueueDepth)
	var wWG sync.WaitGroup
	wWG.Add(1)
	go func() {
		defer wWG.Done()
		bw := bufio.NewWriter(c)
		for f := range futures {
			line := <-f
			bw.WriteString(line)
			bw.WriteByte('\n')
			// Flush when no more replies are immediately ready.
			if len(futures) == 0 {
				bw.Flush()
			}
		}
		bw.Flush()
	}()

	instant := func(line string) {
		f := make(chan string, 1)
		f <- line
		futures <- f
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 4096), 1<<16)
	for sc.Scan() {
		op, key, val, err := parseRequest(sc.Text())
		if err != nil {
			instant("ERR " + err.Error())
			continue
		}
		if op == 'P' {
			instant("PONG")
			continue
		}
		if s.draining.Load() {
			instant("ERR server draining")
			s.cRejected.Inc()
			continue
		}
		r := &request{op: op, key: key, val: val, enq: time.Now(), done: make(chan string, 1)}
		s.shardFor(key).reqs <- r
		futures <- r.done
	}
	close(futures)
	wWG.Wait()
}

// parseRequest parses one protocol line. op 'P' means PING.
func parseRequest(line string) (op byte, key, val uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, 0, 0, fmt.Errorf("empty request")
	}
	verb := strings.ToUpper(fields[0])
	argc := map[string]int{"SET": 2, "GET": 1, "DEL": 1, "PING": 0}
	n, ok := argc[verb]
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown verb %q", fields[0])
	}
	if len(fields)-1 != n {
		return 0, 0, 0, fmt.Errorf("%s takes %d argument(s)", verb, n)
	}
	if verb == "PING" {
		return 'P', 0, 0, nil
	}
	key, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil || key == 0 {
		return 0, 0, 0, fmt.Errorf("key must be a decimal integer >= 1")
	}
	if verb == "SET" {
		val, err = strconv.ParseUint(fields[2], 10, 64)
		if err != nil || val == 0 {
			return 0, 0, 0, fmt.Errorf("value must be a decimal integer >= 1")
		}
	}
	return verb[0], key, val, nil
}

// shardWorker owns one Shard: it admits requests into a pending batch and
// dispatches when the batch fills, the oldest request has waited BatchWait,
// or an arriving mutation conflicts with a slot the batch already touches.
type shardWorker struct {
	shard   *Shard
	reqs    chan *request
	drainCh chan struct{} // closed by Shutdown: flush eagerly from now on
	done    chan struct{}

	drained  bool
	maxBatch int
	wait     time.Duration

	// pending batch state
	batch   Batch
	pending []*request
	getPos  []int        // for GET requests: index into batch.GetKeys
	mutated map[int]bool // slots written by the pending batch
	read    map[int]bool // slots read by the pending batch
	first   time.Time    // arrival of the oldest pending request

	gQueue     *telemetry.Gauge
	gOccupancy *telemetry.Gauge
	hReqUS     *telemetry.Histogram
	hBatchSim  *telemetry.Histogram
	cBatches   *telemetry.Counter
	cOps       *telemetry.Counter
	cSeals     *telemetry.Counter
	cErrors    *telemetry.Counter
}

func newShardWorker(sh *Shard, cfg Config, reg *telemetry.Registry) *shardWorker {
	p := fmt.Sprintf("serve.shard%d.", sh.ID())
	return &shardWorker{
		shard:      sh,
		reqs:       make(chan *request, cfg.QueueDepth),
		drainCh:    make(chan struct{}),
		done:       make(chan struct{}),
		maxBatch:   cfg.MaxBatch,
		wait:       cfg.BatchWait,
		mutated:    make(map[int]bool),
		read:       make(map[int]bool),
		gQueue:     reg.Gauge(p + "queue_depth"),
		gOccupancy: reg.Gauge(p + "batch_occupancy"),
		hReqUS:     reg.Histogram("serve.request_us", telemetry.LatencyBucketsUS),
		hBatchSim:  reg.Histogram("serve.batch_sim_us", telemetry.LatencyBucketsUS),
		cBatches:   reg.Counter(p + "batches"),
		cOps:       reg.Counter(p + "ops"),
		cSeals:     reg.Counter(p + "conflict_seals"),
		cErrors:    reg.Counter(p + "errors"),
	}
}

func (w *shardWorker) run() {
	defer close(w.done)
	for {
		w.gQueue.Set(int64(len(w.reqs)))
		if len(w.pending) == 0 {
			if w.drained {
				r, ok := <-w.reqs
				if !ok {
					return
				}
				w.admit(r)
				continue
			}
			select {
			case r, ok := <-w.reqs:
				if !ok {
					return
				}
				w.admit(r)
			case <-w.drainCh:
				w.drained = true
			}
			continue
		}
		if w.drained {
			// Draining: absorb whatever is already queued, then flush
			// without waiting out the admission deadline.
			select {
			case r, ok := <-w.reqs:
				if !ok {
					w.flush()
					return
				}
				w.admit(r)
			default:
				w.flush()
			}
			continue
		}
		remaining := w.wait - time.Since(w.first)
		if remaining <= 0 {
			w.flush()
			continue
		}
		deadline := time.NewTimer(remaining)
		select {
		case r, ok := <-w.reqs:
			deadline.Stop()
			if !ok {
				w.flush()
				return
			}
			w.admit(r)
		case <-deadline.C:
			w.flush()
		case <-w.drainCh:
			deadline.Stop()
			w.drained = true
		}
	}
}

// admit adds one request to the pending batch, sealing first on slot
// conflict and flushing when full.
func (w *shardWorker) admit(r *request) {
	slot := w.shard.SlotOf(r.key)
	if r.op != 'G' && (w.mutated[slot] || w.read[slot]) {
		// A second mutation of a slot (or a mutation after a GET of it)
		// inside one batch would make the kernel outcome order-dependent:
		// seal the current batch so per-connection ordering holds.
		w.cSeals.Inc()
		w.flush()
	}
	if len(w.pending) == 0 {
		w.first = r.enq
	}
	switch r.op {
	case 'S':
		w.batch.SetKeys = append(w.batch.SetKeys, r.key)
		w.batch.SetVals = append(w.batch.SetVals, r.val)
		w.mutated[slot] = true
		w.getPos = append(w.getPos, -1)
	case 'D':
		w.batch.DelKeys = append(w.batch.DelKeys, r.key)
		w.mutated[slot] = true
		w.getPos = append(w.getPos, -1)
	case 'G':
		w.getPos = append(w.getPos, len(w.batch.GetKeys))
		w.batch.GetKeys = append(w.batch.GetKeys, r.key)
		w.read[slot] = true
	}
	w.pending = append(w.pending, r)
	if w.batch.Ops() >= w.maxBatch {
		w.flush()
	}
}

// flush applies the pending batch and resolves every reply future.
func (w *shardWorker) flush() {
	if len(w.pending) == 0 {
		return
	}
	res, err := w.shard.Apply(&w.batch)
	now := time.Now()
	if err != nil {
		w.cErrors.Inc()
		for _, r := range w.pending {
			r.done <- "ERR " + err.Error()
		}
	} else {
		for i, r := range w.pending {
			switch {
			case r.op != 'G':
				r.done <- "OK"
			case res.GetVals[w.getPos[i]] != 0:
				r.done <- "VALUE " + strconv.FormatUint(res.GetVals[w.getPos[i]], 10)
			default:
				r.done <- "NOTFOUND"
			}
			w.hReqUS.Observe(int64(now.Sub(r.enq) / time.Microsecond))
		}
		w.gOccupancy.Set(int64(res.Ops))
		w.hBatchSim.ObserveMicros(res.SimTime)
		w.cBatches.Inc()
		w.cOps.Add(int64(res.Ops))
	}
	w.batch = Batch{}
	w.pending = w.pending[:0]
	w.getPos = w.getPos[:0]
	w.mutated = make(map[int]bool)
	w.read = make(map[int]bool)
}
