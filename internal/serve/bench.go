package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// BenchEntry is one (mode, shard count) serving measurement for
// BENCH_serve.json.
type BenchEntry struct {
	Mode       string  `json:"mode"`
	Shards     int     `json:"shards"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Batches    int64   `json:"batches"`
	Throughput float64 `json:"ops_per_sec"` // wall-clock, client-observed
	P50US      float64 `json:"p50_us"`
	P95US      float64 `json:"p95_us"`
	P99US      float64 `json:"p99_us"`
	// MeanFill is ops per dispatched epoch (pipeline batching efficiency).
	MeanFill float64 `json:"mean_batch_fill"`
	// CacheHits counts GETs served from the hot-key cache, no kernel trip.
	CacheHits int64 `json:"cache_hits"`
	// SimBatchUS is the mean simulated time per batch across shards.
	SimBatchUS float64 `json:"sim_batch_us"`
	// RecoverUS is the summed simulated restart/recovery time across shards
	// (kill-and-recover runs only).
	RecoverUS float64 `json:"recover_us,omitempty"`
	// CrashPoints lists the between-stage crash points exercised per shard
	// by the kill-and-recover pass.
	CrashPoints []string `json:"crash_points,omitempty"`
	Recovered   bool     `json:"recovered"`
	Verified    bool     `json:"verified"`
	// TracesCaptured / SlowTraces count the per-request pipeline traces the
	// run sampled (head sampling + slow threshold).
	TracesCaptured int64 `json:"traces_captured,omitempty"`
	SlowTraces     int64 `json:"slow_traces,omitempty"`
	// AdminProbed reports that the admin endpoint answered /metrics,
	// /healthz and /statusz during the run (Admin option).
	AdminProbed bool `json:"admin_probed,omitempty"`
	// AuditEvents counts recovery-audit events; AuditConsistent reports the
	// trail matched the injected crash points (kill-and-recover runs).
	AuditEvents     int  `json:"audit_events,omitempty"`
	AuditConsistent bool `json:"audit_consistent,omitempty"`
	// Retry marks the exactly-once-client pass: every request carries an
	// "@cid.seq" ID through the server's dedup window. The price of those
	// IDs on a clean network is the retry-off vs retry-on throughput delta.
	Retry      bool  `json:"retry,omitempty"`
	Retries    int64 `json:"retries,omitempty"`    // RETRY-verdict resends observed
	Reconnects int64 `json:"reconnects,omitempty"` // transport reconnects observed
	GaveUp     int64 `json:"gave_up,omitempty"`    // ops abandoned after MaxRetries
	// Txn marks the transactional pass: zipf hot-key read-modify-write
	// transactions over protocol v2 (Ops counts issued transactions,
	// Throughput/latency cover committed ones). The pass also verifies the
	// per-key snapshot-isolation ledger against the durable image
	// (SILedgerKeys = slot-exclusive keys checked) and probes epoch fill
	// under plain zipf write conflicts with squashing on (ConflictFill)
	// versus the PR-8 chained-epoch batcher (ChainedFill); FillGain is
	// their ratio and must stay >= minConflictFillGain.
	Txn                bool    `json:"txn,omitempty"`
	TxnCommitted       int64   `json:"txn_committed,omitempty"`
	TxnAborts          int64   `json:"txn_aborts,omitempty"`
	TxnConflictRetries int64   `json:"txn_conflict_retries,omitempty"`
	TxnDropped         int64   `json:"txn_dropped,omitempty"` // MaxAttempts exceeded
	SILedgerKeys       int     `json:"si_ledger_keys,omitempty"`
	ConflictFill       float64 `json:"conflict_fill,omitempty"`
	ChainedFill        float64 `json:"chained_fill,omitempty"`
	FillGain           float64 `json:"conflict_fill_gain,omitempty"`
}

// BenchReport is the BENCH_serve.json document.
type BenchReport struct {
	Ops       int64        `json:"ops_per_run"`
	Conns     int          `json:"conns"`
	Batch     int          `json:"batch"`
	BatchWait string       `json:"batch_wait"`
	Adaptive  bool         `json:"adaptive"` // adaptive batch sizing (false = fixed BatchWait)
	Dist      string       `json:"dist"`
	Theta     float64      `json:"theta,omitempty"` // zipf only
	Sets      int          `json:"sets_per_shard"`
	Seed      uint64       `json:"seed"`
	Entries   []BenchEntry `json:"entries"`
}

// SelfTestOptions configures SelfTest / Bench runs.
type SelfTestOptions struct {
	Modes       []workloads.Mode
	ShardCounts []int
	Ops         int64
	Conns       int
	Window      int
	Sets        int
	MaxBatch    int
	BatchWait   time.Duration
	FixedWait   bool // disable the adaptive controller (legacy fixed deadline)
	QueueDepth  int
	HotKeys     int
	Workers     int
	Seed        uint64
	GetFraction float64
	DelFraction float64
	Dist        string  // key distribution: DistUniform (default) or DistZipf
	Theta       float64 // zipf skew (0 = 0.99)
	// KillAndRecover crashes every shard after the load drains — cycling
	// through the between-stage crash points — restarts it through the
	// recovery path, and verifies (GPM modes only; CAP modes verify
	// without the crash).
	KillAndRecover bool
	// Admin starts the live admin endpoint (127.0.0.1:0) for each run and
	// probes /metrics, /healthz and /statusz before shutdown, so the bench
	// numbers measure the pipeline with the full observability plane on.
	Admin bool
	// AuditPath, when set, streams the recovery audit trail to this JSONL
	// file (appending across runs).
	AuditPath string
	// RetryPass adds a second measurement per (mode, shards) combination
	// with the exactly-once retry client enabled, so BENCH_serve.json
	// records what request IDs and the dedup window cost on a clean network.
	RetryPass bool
	// TxnPass adds a transactional measurement per (mode, shards): a zipf
	// hot-key RMW transaction load over protocol v2 with the SI ledger
	// verified against the durable image, plus the conflict-fill probe
	// (squash vs NoSquash plain zipf writers) gated at minConflictFillGain.
	TxnPass bool
	Txns    int64 // transactions per txn pass (0 = Ops/8)
	TxnSize int   // keys per transaction (0 = 2)
}

func (o *SelfTestOptions) normalize() {
	if len(o.Modes) == 0 {
		o.Modes = []workloads.Mode{workloads.GPM}
	}
	if len(o.ShardCounts) == 0 {
		o.ShardCounts = []int{2}
	}
	if o.Ops == 0 {
		o.Ops = 10000
	}
	if o.Conns == 0 {
		o.Conns = 8
	}
	if o.Window == 0 {
		o.Window = 16
	}
	if o.Sets == 0 {
		o.Sets = 1 << 10
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 256
	}
	if o.BatchWait == 0 {
		o.BatchWait = 500 * time.Microsecond
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 1024
	}
	if o.GetFraction == 0 && o.DelFraction == 0 {
		o.GetFraction, o.DelFraction = 0.5, 0.05
	}
	if o.Dist == "" {
		o.Dist = DistUniform
	}
	if o.Dist == DistZipf && o.Theta == 0 {
		o.Theta = 0.99
	}
	if o.Txns == 0 {
		o.Txns = o.Ops / 8
		if o.Txns < 64 {
			o.Txns = 64
		}
	}
	if o.TxnSize == 0 {
		o.TxnSize = 2
	}
}

// SelfTest runs the full serving path in-process for every (mode, shards)
// combination: real TCP loopback traffic, graceful drain, optional
// kill-and-recover, and authoritative durable-state verification. It
// returns the report; any verification or recovery failure is an error.
func SelfTest(opts SelfTestOptions) (*BenchReport, error) {
	opts.normalize()
	rep := &BenchReport{
		Ops:       opts.Ops,
		Conns:     opts.Conns,
		Batch:     opts.MaxBatch,
		BatchWait: opts.BatchWait.String(),
		Adaptive:  !opts.FixedWait,
		Dist:      opts.Dist,
		Sets:      opts.Sets,
		Seed:      opts.Seed,
	}
	if opts.Dist == DistZipf {
		rep.Theta = opts.Theta
	}
	for _, mode := range opts.Modes {
		for _, shards := range opts.ShardCounts {
			entry, err := runSelfTest(opts, mode, shards, false)
			if err != nil {
				return rep, fmt.Errorf("serve: selftest %s x%d: %w", mode, shards, err)
			}
			rep.Entries = append(rep.Entries, *entry)
			if opts.RetryPass {
				entry, err := runSelfTest(opts, mode, shards, true)
				if err != nil {
					return rep, fmt.Errorf("serve: selftest %s x%d (retry): %w", mode, shards, err)
				}
				rep.Entries = append(rep.Entries, *entry)
			}
			if opts.TxnPass {
				entry, err := runTxnSelfTest(opts, mode, shards)
				if err != nil {
					return rep, fmt.Errorf("serve: selftest %s x%d (txn): %w", mode, shards, err)
				}
				rep.Entries = append(rep.Entries, *entry)
			}
		}
	}
	return rep, nil
}

func runSelfTest(opts SelfTestOptions, mode workloads.Mode, shards int, retry bool) (*BenchEntry, error) {
	tel := telemetry.New()
	// The observability plane is always on for selftest runs — the numbers
	// this writes into BENCH_serve.json (and the regression gate reads) must
	// measure the pipeline WITH tracing and audit enabled, not a stripped
	// build nobody ships.
	obsCfg := ObsConfig{AuditPath: opts.AuditPath}
	if opts.Admin {
		obsCfg.AdminAddr = "127.0.0.1:0"
	}
	plane, err := NewObsPlane(obsCfg)
	if err != nil {
		return nil, err
	}
	defer plane.Stop()
	cfg := Config{
		Mode:       mode,
		Shards:     shards,
		Sets:       opts.Sets,
		MaxBatch:   opts.MaxBatch,
		BatchWait:  opts.BatchWait,
		FixedWait:  opts.FixedWait,
		QueueDepth: opts.QueueDepth,
		HotKeys:    opts.HotKeys,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		Telemetry:  tel,
	}
	plane.Apply(&cfg)
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	adminAddr, err := plane.Start(srv)
	if err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	load, err := RunLoad(LoadConfig{
		Addr:        addr.String(),
		Conns:       opts.Conns,
		Ops:         opts.Ops,
		Window:      opts.Window,
		GetFraction: opts.GetFraction,
		DelFraction: opts.DelFraction,
		KeySpace:    uint64(opts.Sets) * 2, // enough reuse for hits and dels
		Dist:        opts.Dist,
		Theta:       opts.Theta,
		Seed:        opts.Seed,
		Retry:       retry,
	})
	if err != nil {
		srv.Shutdown(5 * time.Second)
		return nil, err
	}
	adminProbed := false
	if adminAddr != "" {
		// Probe the admin surface while the server is still live and loaded.
		if err := probeAdmin(adminAddr, shards); err != nil {
			srv.Shutdown(5 * time.Second)
			return nil, fmt.Errorf("admin probe: %w", err)
		}
		adminProbed = true
	}
	srv.Shutdown(10 * time.Second)
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("serve loop: %w", err)
	}
	if load.Errors > 0 {
		return nil, fmt.Errorf("%d requests failed under load", load.Errors)
	}

	entry := &BenchEntry{
		Mode:        mode.String(),
		Shards:      shards,
		Ops:         load.Ops,
		Errors:      load.Errors,
		Throughput:  load.Throughput,
		P50US:       load.P50US,
		P95US:       load.P95US,
		P99US:       load.P99US,
		AdminProbed: adminProbed,
		Retry:       retry,
		Retries:     load.Retries,
		Reconnects:  load.Reconnects,
		GaveUp:      load.GaveUp,
	}
	if retry && load.GaveUp > 0 {
		return nil, fmt.Errorf("%d ops gave up on a clean loopback network", load.GaveUp)
	}
	entry.TracesCaptured, entry.SlowTraces = plane.Tracer.Captured()
	if load.Ops >= obs.DefaultSampleEvery && entry.TracesCaptured == 0 {
		return nil, fmt.Errorf("tracing enabled but 0 of %d requests captured", load.Ops)
	}
	var served, cacheHits int64
	reg := tel.Registry()
	for i, sh := range srv.Shards() {
		served += sh.Ops()
		if sh.Ops() == 0 {
			return nil, fmt.Errorf("shard %d served 0 ops — keyspace did not span all shards", i)
		}
		entry.Batches += reg.Counter(fmt.Sprintf("serve.shard%d.batches", i)).Value()
		cacheHits += reg.Counter(fmt.Sprintf("serve.shard%d.cache_hits", i)).Value()
	}
	if served+cacheHits != load.Ops {
		return nil, fmt.Errorf("shards served %d ops + %d cache hits, clients completed %d",
			served, cacheHits, load.Ops)
	}
	entry.CacheHits = cacheHits
	if entry.Batches > 0 {
		// Cache hits never reach a batch; fill measures what the kernel saw.
		entry.MeanFill = float64(entry.Ops-cacheHits) / float64(entry.Batches)
	}
	if h := reg.Histogram("serve.batch_sim_us", telemetry.LatencyBucketsUS); h.Count() > 0 {
		entry.SimBatchUS = float64(h.Sum()) / float64(h.Count())
	}

	// Kill-and-recover: crash every shard at a between-stage pipeline crash
	// point (cycled so every point is exercised), then restart through the
	// recovery kernel and reload path. The mid-kernel point dies inside the
	// mutation kernel itself (partial HCL log); the others model a process
	// death between pipeline stages.
	var expected []crashRound
	if opts.KillAndRecover && mode.UsesGPM() {
		points := CrashPoints()
		all := srv.Shards()
		rounds := len(all)
		if rounds < len(points) {
			rounds = len(points) // every point fires even with few shards
		}
		for i := 0; i < rounds; i++ {
			sh := all[i%len(all)]
			p := points[i%len(points)]
			crash := crashBatchFor(sh, shards)
			if err := sh.CrashAt(crash, p, 3); err != nil {
				return nil, fmt.Errorf("shard %d crash %s: %w", sh.ID(), p, err)
			}
			entry.CrashPoints = append(entry.CrashPoints, p.String())
			restore, err := sh.Restart()
			if err != nil {
				return nil, fmt.Errorf("shard %d restart after %s: %w", sh.ID(), p, err)
			}
			entry.RecoverUS += restore.Seconds() * 1e6
			expected = append(expected, crashRound{shard: sh.ID(), point: p, muts: crash.Mutations()})
		}
		entry.Recovered = true
	}
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			return nil, err
		}
	}
	entry.Verified = true
	entry.AuditEvents = plane.Audit.Len()
	if opts.KillAndRecover {
		if err := verifyAuditTrail(plane.Audit.Events(), expected, shards); err != nil {
			return nil, fmt.Errorf("audit trail: %w", err)
		}
		entry.AuditConsistent = true
	}
	return entry, nil
}

// Txn-pass workload shape: transactions draw zipf-hot keys from a keyspace
// far above the plain-load range (disjoint dedup/key territory), small
// enough that conflicting writers are the common case, not the tail.
const (
	benchTxnKeyBase  = 1 << 20
	benchTxnKeySpace = 256
)

// minConflictFillGain is the batching acceptance floor: under zipf-0.99
// conflicting writers, epoch fill with write-squashing must be at least
// this multiple of the PR-8 chained-epoch batcher's fill.
const minConflictFillGain = 2.0

// runTxnSelfTest measures the transactional serving path for one (mode,
// shards) combination: a zipf hot-key read-modify-write transaction load
// over protocol v2 (exactly-once client, conflict re-runs), the per-key
// snapshot-isolation ledger checked against the durable image, and the
// conflict-fill probe comparing the squashing batcher against the PR-8
// chained-epoch baseline.
func runTxnSelfTest(opts SelfTestOptions, mode workloads.Mode, shards int) (*BenchEntry, error) {
	tel := telemetry.New()
	plane, err := NewObsPlane(ObsConfig{AuditPath: opts.AuditPath})
	if err != nil {
		return nil, err
	}
	defer plane.Stop()
	cfg := Config{
		Mode:       mode,
		Shards:     shards,
		Sets:       opts.Sets,
		MaxBatch:   opts.MaxBatch,
		BatchWait:  opts.BatchWait,
		FixedWait:  opts.FixedWait,
		QueueDepth: opts.QueueDepth,
		HotKeys:    opts.HotKeys,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		Telemetry:  tel,
	}
	plane.Apply(&cfg)
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := plane.Start(srv); err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	tres, terr := RunTxnLoad(TxnLoadConfig{
		Addr:     addr.String(),
		Conns:    opts.Conns,
		Txns:     opts.Txns,
		TxnSize:  opts.TxnSize,
		KeyBase:  benchTxnKeyBase,
		KeySpace: benchTxnKeySpace,
		Dist:     DistZipf,
		Theta:    0.99,
		Seed:     opts.Seed,
		Retry:    true,
	})
	srv.Shutdown(10 * time.Second)
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("serve loop: %w", err)
	}
	if terr != nil {
		return nil, terr
	}
	if tres.Errors > 0 || len(tres.Failures) > 0 {
		return nil, fmt.Errorf("txn load: %d errors, failures %v", tres.Errors, tres.Failures)
	}
	if tres.GaveUp > 0 {
		return nil, fmt.Errorf("%d txn outcomes unresolved on a clean loopback network", tres.GaveUp)
	}
	if tres.ReadAnomalies > 0 {
		return nil, fmt.Errorf("repeatable read violated %d times inside open snapshots", tres.ReadAnomalies)
	}
	if tres.Txns == 0 {
		return nil, fmt.Errorf("0 of %d transactions committed", opts.Txns)
	}
	if got := tres.Txns + tres.AbortedForGood + tres.GaveUp; got != opts.Txns {
		return nil, fmt.Errorf("txn accounting: %d committed + %d dropped + %d unknown != %d issued",
			tres.Txns, tres.AbortedForGood, tres.GaveUp, opts.Txns)
	}

	entry := &BenchEntry{
		Mode:               mode.String(),
		Shards:             shards,
		Ops:                opts.Txns,
		Throughput:         tres.Throughput,
		P50US:              tres.P50US,
		P95US:              tres.P95US,
		P99US:              tres.P99US,
		Retry:              true,
		Retries:            tres.Retries,
		Reconnects:         tres.Reconnects,
		Txn:                true,
		TxnCommitted:       tres.Txns,
		TxnDropped:         tres.AbortedForGood,
		TxnConflictRetries: tres.ConflictRetries,
	}
	reg := tel.Registry()
	var served int64
	for i := range srv.Shards() {
		entry.Batches += reg.Counter(fmt.Sprintf("serve.shard%d.batches", i)).Value()
		served += reg.Counter(fmt.Sprintf("serve.shard%d.ops", i)).Value()
		entry.TxnAborts += reg.Counter(fmt.Sprintf("serve.shard%d.txn_aborts", i)).Value()
	}
	if entry.Batches > 0 {
		// For the txn pass, fill counts epoch-riding requests (COMMITs) per
		// dispatched epoch: conflicting commits sharing a kernel trip.
		entry.MeanFill = float64(served) / float64(entry.Batches)
	}

	// SI ledger: every committed transaction read-modify-wrote +1 on each of
	// its keys, so a slot-exclusive key's durable value must land inside
	// [Committed[k], Committed[k]+Unresolved[k]]. Keys sharing a store slot
	// are excluded — a colliding SET legally evicts the incumbent.
	for _, sh := range srv.Shards() {
		owners := make(map[int]int)
		for k := uint64(0); k < benchTxnKeySpace; k++ {
			key := uint64(benchTxnKeyBase) + k
			if int(key%uint64(shards)) == sh.ID() {
				owners[sh.SlotOf(key)]++
			}
		}
		for k := uint64(0); k < benchTxnKeySpace; k++ {
			key := uint64(benchTxnKeyBase) + k
			if int(key%uint64(shards)) != sh.ID() || owners[sh.SlotOf(key)] != 1 {
				continue
			}
			lo := tres.Committed[key]
			hi := lo + tres.Unresolved[key]
			v, _ := sh.MVCCLatest(key) // absent reads as 0
			if int64(v) < lo || int64(v) > hi {
				return nil, fmt.Errorf("si ledger: key %d durable count %d outside [%d, %d]", key, v, lo, hi)
			}
			entry.SILedgerKeys++
		}
		if err := sh.Verify(); err != nil {
			return nil, err
		}
	}
	if entry.SILedgerKeys == 0 {
		return nil, fmt.Errorf("si ledger checked 0 slot-exclusive keys — the invariant was vacuous")
	}
	entry.Verified = true

	// Conflict-fill probe: pure zipf-0.99 writers, squashing on vs the PR-8
	// chained-epoch batcher (NoSquash). The whole point of the commit-window
	// redesign is that hot-slot conflicts share a kernel epoch; gate it.
	if entry.ConflictFill, err = conflictFillProbe(opts, mode, shards, false); err != nil {
		return nil, fmt.Errorf("conflict-fill probe (squash): %w", err)
	}
	if entry.ChainedFill, err = conflictFillProbe(opts, mode, shards, true); err != nil {
		return nil, fmt.Errorf("conflict-fill probe (chained): %w", err)
	}
	if entry.ChainedFill > 0 {
		entry.FillGain = entry.ConflictFill / entry.ChainedFill
	}
	if entry.FillGain < minConflictFillGain {
		return nil, fmt.Errorf("zipf conflict fill %.2f is only %.2fx the chained baseline %.2f, want >= %.1fx",
			entry.ConflictFill, entry.FillGain, entry.ChainedFill, minConflictFillGain)
	}
	return entry, nil
}

// conflictFillProbe runs a pure-SET zipf-0.99 load — every hot key a
// conflicting writer — and returns mean epoch fill, with write-squashing
// either on (the redesigned batcher) or off (PR-8 chaining).
func conflictFillProbe(opts SelfTestOptions, mode workloads.Mode, shards int, noSquash bool) (float64, error) {
	tel := telemetry.New()
	srv, err := NewServer(Config{
		Mode:       mode,
		Shards:     shards,
		Sets:       opts.Sets,
		MaxBatch:   opts.MaxBatch,
		BatchWait:  opts.BatchWait,
		FixedWait:  opts.FixedWait,
		QueueDepth: opts.QueueDepth,
		HotKeys:    opts.HotKeys,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		Telemetry:  tel,
		NoSquash:   noSquash,
	})
	if err != nil {
		return 0, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	load, err := RunLoad(LoadConfig{
		Addr:     addr.String(),
		Conns:    opts.Conns,
		Ops:      opts.Ops,
		Window:   opts.Window,
		KeySpace: uint64(opts.Sets) * 2,
		Dist:     DistZipf,
		Theta:    0.99,
		Seed:     opts.Seed,
	})
	srv.Shutdown(10 * time.Second)
	if serr := <-serveErr; serr != nil {
		return 0, fmt.Errorf("serve loop: %w", serr)
	}
	if err != nil {
		return 0, err
	}
	if load.Errors > 0 {
		return 0, fmt.Errorf("%d requests failed under load", load.Errors)
	}
	var batches int64
	reg := tel.Registry()
	for i := range srv.Shards() {
		batches += reg.Counter(fmt.Sprintf("serve.shard%d.batches", i)).Value()
	}
	if batches == 0 {
		return 0, fmt.Errorf("0 batches dispatched for %d ops", load.Ops)
	}
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			return 0, err
		}
	}
	return float64(load.Ops) / float64(batches), nil
}

// crashRound records one injected crash for audit-trail cross-checking.
type crashRound struct {
	shard int
	point CrashPoint
	muts  int
}

// probeAdmin asserts the admin surface is answering with well-formed,
// non-trivial documents while the server runs: /healthz says ok, /metrics
// renders the shard-0 op counter in Prometheus text, /statusz parses as
// JSON with the right shard count.
func probeAdmin(addr string, shards int) error {
	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s -> %d: %s", path, resp.StatusCode, body)
		}
		return string(body), nil
	}
	if body, err := get("/healthz"); err != nil {
		return err
	} else if strings.TrimSpace(body) != "ok" {
		return fmt.Errorf("/healthz said %q, want ok", body)
	}
	if body, err := get("/metrics"); err != nil {
		return err
	} else if !strings.Contains(body, "serve_shard0_ops") {
		return fmt.Errorf("/metrics missing serve_shard0_ops:\n%.500s", body)
	}
	body, err := get("/statusz")
	if err != nil {
		return err
	}
	var doc StatusDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("/statusz not JSON: %w", err)
	}
	if doc.Shards != shards || len(doc.ShardRows) != shards {
		return fmt.Errorf("/statusz reports %d/%d shards, want %d", doc.Shards, len(doc.ShardRows), shards)
	}
	if _, err := get("/debug/trace?n=4"); err != nil {
		return err
	}
	return nil
}

// verifyAuditTrail cross-checks the recovery audit trail against the
// crashes actually injected: every crash event pairs with a restart whose
// replay evidence matches what that crash point must have left behind —
//
//	before-kernel  tx flag set, all geometries replayed, 0 slots undone
//	               (the log was still empty);
//	mid-kernel     tx flag set, replay undid at most the batch's mutations;
//	before-commit  tx flag set, replay undid EXACTLY the batch's mutations
//	               (fully logged, never committed);
//	before-reply   tx flag clear (the batch committed), nothing replayed.
//
// Every shard must close with a verify event whose outcome is "ok".
func verifyAuditTrail(events []obs.AuditEvent, expected []crashRound, shards int) error {
	var crashes, restarts, verifies []obs.AuditEvent
	for _, ev := range events {
		switch ev.Type {
		case obs.AuditCrash:
			crashes = append(crashes, ev)
		case obs.AuditRestart:
			restarts = append(restarts, ev)
		case obs.AuditVerify:
			verifies = append(verifies, ev)
		}
	}
	if len(crashes) != len(expected) || len(restarts) != len(expected) {
		return fmt.Errorf("%d crash / %d restart events for %d injected crashes",
			len(crashes), len(restarts), len(expected))
	}
	for i, want := range expected {
		c, r := crashes[i], restarts[i]
		if c.Shard != want.shard || c.Point != want.point.String() {
			return fmt.Errorf("crash %d recorded shard %d point %q, injected shard %d point %s",
				i, c.Shard, c.Point, want.shard, want.point)
		}
		if r.Shard != want.shard {
			return fmt.Errorf("restart %d on shard %d, crash was on shard %d", i, r.Shard, want.shard)
		}
		if r.Seq <= c.Seq {
			return fmt.Errorf("restart %d (seq %d) not after its crash (seq %d)", i, r.Seq, c.Seq)
		}
		wantTx := want.point != CrashBeforeReply
		if r.TxSet != wantTx {
			return fmt.Errorf("restart %d after %s found tx_set=%v, want %v", i, want.point, r.TxSet, wantTx)
		}
		if wantTx && len(r.Geometries) == 0 {
			return fmt.Errorf("restart %d after %s replayed no log geometries", i, want.point)
		}
		if !wantTx && (len(r.Geometries) != 0 || r.SlotsRolledBack != 0) {
			return fmt.Errorf("restart %d after %s replayed %v geoms, undid %d slots; committed batches must not be rolled back",
				i, want.point, r.Geometries, r.SlotsRolledBack)
		}
		switch want.point {
		case CrashBeforeKernel:
			if r.SlotsRolledBack != 0 {
				return fmt.Errorf("restart %d after %s undid %d slots, want 0 (kernel never ran)",
					i, want.point, r.SlotsRolledBack)
			}
		case CrashMidKernel:
			if r.SlotsRolledBack > int64(want.muts) {
				return fmt.Errorf("restart %d after %s undid %d slots, batch only had %d mutations",
					i, want.point, r.SlotsRolledBack, want.muts)
			}
		case CrashBeforeCommit:
			if r.SlotsRolledBack != int64(want.muts) {
				return fmt.Errorf("restart %d after %s undid %d slots, want exactly %d (fully logged, uncommitted)",
					i, want.point, r.SlotsRolledBack, want.muts)
			}
		}
	}
	if len(verifies) < shards {
		return fmt.Errorf("%d verify events, want >= %d (one per shard)", len(verifies), shards)
	}
	for _, v := range verifies {
		if v.Outcome != "ok" {
			return fmt.Errorf("shard %d verify outcome %q: %s", v.Shard, v.Outcome, v.Err)
		}
	}
	return nil
}

// crashBatchFor builds a batch of SETs routed to shard sh (key mod shards
// == shard id), each on a distinct slot, to die inside of.
func crashBatchFor(sh *Shard, shards int) *Batch {
	b := &Batch{}
	seen := make(map[int]bool)
	start := uint64(sh.ID())
	if start == 0 {
		start = uint64(shards) // keys must be >= 1
	}
	for key := start; len(b.SetKeys) < 8; key += uint64(shards) {
		slot := sh.SlotOf(key)
		if seen[slot] {
			continue
		}
		seen[slot] = true
		b.SetKeys = append(b.SetKeys, key)
		b.SetVals = append(b.SetVals, (key^0xdeadbeef)|1)
	}
	return b
}
