package serve

import (
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func quickShard(t *testing.T, mode workloads.Mode) *Shard {
	t.Helper()
	sh, err := NewShard(0, ShardConfig{Mode: mode, Sets: 64, MaxBatch: 64, Workers: 1, Seed: 7})
	if err != nil {
		t.Fatalf("NewShard(%s): %v", mode, err)
	}
	return sh
}

// A shard must apply SET/GET/DEL batches transactionally: GETs see the
// batch's own SETs, DELs empty slots, and the durable store always matches
// the committed oracle.
func TestShardApplyAndVerify(t *testing.T) {
	sh := quickShard(t, workloads.GPM)

	res, err := sh.Apply(&Batch{
		SetKeys: []uint64{1, 2, 3},
		SetVals: []uint64{10, 20, 30},
		GetKeys: []uint64{1, 2, 99},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := []uint64{10, 20, 0}
	for i, w := range want {
		if res.GetVals[i] != w {
			t.Errorf("GetVals[%d] = %d, want %d", i, res.GetVals[i], w)
		}
	}
	if res.SimTime <= 0 {
		t.Error("batch consumed no simulated time")
	}
	if err := sh.Verify(); err != nil {
		t.Fatalf("Verify after batch 1: %v", err)
	}

	// Overwrite, delete, and read back in a second batch.
	res, err = sh.Apply(&Batch{
		SetKeys: []uint64{1},
		SetVals: []uint64{11},
		DelKeys: []uint64{2},
		GetKeys: []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatalf("Apply 2: %v", err)
	}
	want = []uint64{11, 0, 30}
	for i, w := range want {
		if res.GetVals[i] != w {
			t.Errorf("batch2 GetVals[%d] = %d, want %d", i, res.GetVals[i], w)
		}
	}
	if err := sh.Verify(); err != nil {
		t.Fatalf("Verify after batch 2: %v", err)
	}
	if sh.Ops() != 6+5 {
		t.Errorf("Ops = %d, want 11", sh.Ops())
	}
}

// Every supported serving mode must persist acknowledged batches durably.
func TestShardModes(t *testing.T) {
	for _, mode := range SupportedModes() {
		t.Run(mode.String(), func(t *testing.T) {
			sh := quickShard(t, mode)
			for i := uint64(1); i <= 3; i++ {
				_, err := sh.Apply(&Batch{
					SetKeys: []uint64{i, i + 100},
					SetVals: []uint64{i * 7, i * 9},
					GetKeys: []uint64{i},
				})
				if err != nil {
					t.Fatalf("Apply batch %d: %v", i, err)
				}
			}
			if _, err := sh.Apply(&Batch{DelKeys: []uint64{2}}); err != nil {
				t.Fatalf("Apply del: %v", err)
			}
			if err := sh.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Batches violating the one-mutation-per-slot precondition must be
// refused, not applied nondeterministically.
func TestShardRejectsSlotConflict(t *testing.T) {
	sh := quickShard(t, workloads.GPM)
	_, err := sh.Apply(&Batch{SetKeys: []uint64{5, 5}, SetVals: []uint64{1, 2}})
	if err == nil || !strings.Contains(err.Error(), "two mutations") {
		t.Fatalf("conflicting batch: err = %v, want two-mutations error", err)
	}
	// DEL and SET of the same key collide on the same slot too.
	_, err = sh.Apply(&Batch{SetKeys: []uint64{5}, SetVals: []uint64{1}, DelKeys: []uint64{5}})
	if err == nil {
		t.Fatal("SET+DEL same key in one batch should be refused")
	}
}

// Crashing inside an uncommitted batch and restarting must roll the store
// back to the committed oracle (the acknowledged prefix), and the shard
// must keep serving afterwards.
func TestShardCrashRecoverRestart(t *testing.T) {
	for _, mode := range []workloads.Mode{workloads.GPM, workloads.GPMeADR} {
		t.Run(mode.String(), func(t *testing.T) {
			sh := quickShard(t, mode)
			if _, err := sh.Apply(&Batch{
				SetKeys: []uint64{1, 2, 3, 4},
				SetVals: []uint64{10, 20, 30, 40},
			}); err != nil {
				t.Fatalf("committed batch: %v", err)
			}

			// Die inside the next batch: overwrites of committed keys plus
			// fresh inserts, none acknowledged.
			err := sh.CrashMidBatch(&Batch{
				SetKeys: []uint64{1, 2, 50, 51},
				SetVals: []uint64{111, 222, 500, 510},
			}, 3)
			if err != nil {
				t.Fatalf("CrashMidBatch: %v", err)
			}
			if _, err := sh.Apply(&Batch{GetKeys: []uint64{1}}); err == nil {
				t.Fatal("Apply on a down shard should fail")
			}

			restore, err := sh.Restart()
			if err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if restore <= 0 {
				t.Error("restart consumed no simulated time")
			}
			if err := sh.Verify(); err != nil {
				t.Fatalf("Verify after recovery: %v", err)
			}

			// The recovered mirror must serve the committed values.
			res, err := sh.Apply(&Batch{GetKeys: []uint64{1, 2, 50}})
			if err != nil {
				t.Fatalf("Apply after restart: %v", err)
			}
			want := []uint64{10, 20, 0}
			for i, w := range want {
				if res.GetVals[i] != w {
					t.Errorf("post-recovery GetVals[%d] = %d, want %d", i, res.GetVals[i], w)
				}
			}
		})
	}
}

// Every between-stage crash point must recover to the durability contract:
// an unacknowledged batch leaves no trace (before-kernel, mid-kernel,
// before-commit), while a batch that committed before the crash survives
// with only its acknowledgements lost (before-reply).
func TestShardCrashAtEveryPoint(t *testing.T) {
	for _, p := range CrashPoints() {
		t.Run(p.String(), func(t *testing.T) {
			sh := quickShard(t, workloads.GPM)
			if _, err := sh.Apply(&Batch{
				SetKeys: []uint64{1, 2, 3, 4},
				SetVals: []uint64{10, 20, 30, 40},
			}); err != nil {
				t.Fatalf("committed batch: %v", err)
			}

			err := sh.CrashAt(&Batch{
				SetKeys: []uint64{1, 2, 50},
				SetVals: []uint64{111, 222, 500},
			}, p, 3)
			if err != nil {
				t.Fatalf("CrashAt(%s): %v", p, err)
			}
			if _, err := sh.Apply(&Batch{GetKeys: []uint64{1}}); err == nil {
				t.Fatal("Apply on a down shard should fail")
			}
			restore, err := sh.Restart()
			if err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if restore <= 0 {
				t.Error("restart consumed no simulated time")
			}
			if err := sh.Verify(); err != nil {
				t.Fatalf("Verify after %s recovery: %v", p, err)
			}

			want := []uint64{10, 20, 0} // crash batch rolled back
			if p == CrashBeforeReply {
				want = []uint64{111, 222, 500} // durable; only the acks died
			}
			res, err := sh.Apply(&Batch{GetKeys: []uint64{1, 2, 50}})
			if err != nil {
				t.Fatalf("Apply after restart: %v", err)
			}
			for i, w := range want {
				if res.GetVals[i] != w {
					t.Errorf("post-recovery GetVals[%d] = %d, want %d", i, res.GetVals[i], w)
				}
			}
		})
	}
}

// CrashAt must refuse non-GPM modes, double crashes, and mutation-free
// batches — misuse of the injector should never masquerade as coverage.
func TestShardCrashAtRejections(t *testing.T) {
	cap := quickShard(t, workloads.CAPmm)
	if err := cap.CrashAt(&Batch{SetKeys: []uint64{1}, SetVals: []uint64{1}}, CrashBeforeCommit, 1); err == nil {
		t.Error("CrashAt under CAP-mm should fail")
	}
	sh := quickShard(t, workloads.GPM)
	if err := sh.CrashAt(&Batch{GetKeys: []uint64{1}}, CrashBeforeKernel, 1); err == nil {
		t.Error("CrashAt with no mutations should fail")
	}
	if err := sh.CrashAt(&Batch{SetKeys: []uint64{1}, SetVals: []uint64{1}}, CrashBeforeKernel, 1); err != nil {
		t.Fatalf("first crash: %v", err)
	}
	if err := sh.CrashAt(&Batch{SetKeys: []uint64{2}, SetVals: []uint64{2}}, CrashBeforeKernel, 1); err == nil {
		t.Error("second crash on a down shard should fail")
	}
}

// A crash outside any transaction (tx flag clear) must restart cleanly
// with no undo work.
func TestShardCrashBetweenBatches(t *testing.T) {
	sh := quickShard(t, workloads.GPM)
	if _, err := sh.Apply(&Batch{SetKeys: []uint64{9}, SetVals: []uint64{90}}); err != nil {
		t.Fatal(err)
	}
	sh.env.Ctx.Crash()
	sh.down = true
	if _, err := sh.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := sh.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := sh.Apply(&Batch{GetKeys: []uint64{9}})
	if err != nil || res.GetVals[0] != 90 {
		t.Fatalf("GET after clean restart = %v, %v; want 90", res, err)
	}
}

// Unsupported modes must be refused at construction.
func TestShardRejectsUnservableModes(t *testing.T) {
	for _, mode := range []workloads.Mode{workloads.GPUfs, workloads.CPUOnly} {
		if _, err := NewShard(0, ShardConfig{Mode: mode, Sets: 64, MaxBatch: 8}); err == nil {
			t.Errorf("NewShard(%s) should fail", mode)
		}
	}
	// CAP modes cannot crash mid-batch (no in-kernel persistence to log).
	sh := quickShard(t, workloads.CAPmm)
	if err := sh.CrashMidBatch(&Batch{SetKeys: []uint64{1}, SetVals: []uint64{1}}, 1); err == nil {
		t.Error("CrashMidBatch under CAP-mm should fail")
	}
}
