package serve

import "time"

// batchController decides when the batcher should stop holding the head
// epoch open and hand it to the applier. It replaces the fixed BatchWait
// deadline with a runtime decision driven by observed load:
//
//   - It tracks an EWMA of the request inter-arrival gap and of the wall
//     cost of one Apply. Their ratio is the fill worth waiting for — the
//     number of requests expected to arrive while one batch is on the
//     device. Holding past that point adds latency without adding overlap;
//     dispatching earlier starves the kernel.
//   - When the pipeline is starved (the applier is idle and the epoch is
//     under target), it grants a short grace of a few smoothed gaps from
//     the LAST arrival. If the next request does not show up in that
//     window, the load is too sparse to batch and the epoch seals as-is —
//     a lone GET at 3 am never waits out a fixed 500 µs budget.
//
// With Adaptive off, the controller reproduces the fixed policy: hold
// until MaxWait has elapsed since the epoch's first admission (measured
// from admission, not client enqueue, so a backlog drained after a slow
// batch does not count the queue time against its own deadline).
//
// The controller is driven from the batcher goroutine only and does all
// time arithmetic on caller-supplied instants, so tests can script it.
type batchController struct {
	adaptive bool
	maxBatch int
	maxWait  time.Duration // cap on any hold (the configured BatchWait)
	minWait  time.Duration // floor so a warm pipeline cannot busy-spin

	ewmaGapUS   float64   // smoothed inter-arrival gap, µs
	ewmaApplyUS float64   // smoothed wall cost of one Apply, µs
	lastArrival time.Time // most recent admission (zero before the first)
}

const (
	// ctrlAlpha is the EWMA smoothing factor: ~the last 10 observations.
	ctrlAlpha = 0.2
	// ctrlGrace is how many smoothed gaps a starved pipeline waits for the
	// next arrival before sealing a partial epoch.
	ctrlGrace = 2.0
	// ctrlMaxGapUS clamps one observed gap: an idle spell between bursts
	// is absence of load, not a measurement of its rate.
	ctrlMaxGapUS = 100_000.0
)

func newBatchController(adaptive bool, maxBatch int, maxWait time.Duration) *batchController {
	return &batchController{
		adaptive: adaptive,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		minWait:  20 * time.Microsecond,
	}
}

// observeArrival folds one admission instant into the arrival-rate EWMA.
func (c *batchController) observeArrival(now time.Time) {
	if !c.lastArrival.IsZero() {
		gap := float64(now.Sub(c.lastArrival)) / float64(time.Microsecond)
		if gap > ctrlMaxGapUS {
			gap = ctrlMaxGapUS
		}
		if c.ewmaGapUS == 0 {
			c.ewmaGapUS = gap
		} else {
			c.ewmaGapUS += ctrlAlpha * (gap - c.ewmaGapUS)
		}
	}
	c.lastArrival = now
}

// observeApply folds one completed batch's wall cost into the apply EWMA.
func (c *batchController) observeApply(wall time.Duration) {
	us := float64(wall) / float64(time.Microsecond)
	if c.ewmaApplyUS == 0 {
		c.ewmaApplyUS = us
	} else {
		c.ewmaApplyUS += ctrlAlpha * (us - c.ewmaApplyUS)
	}
}

// target is the epoch fill worth holding out for: the expected number of
// arrivals during one Apply, clamped to [1, MaxBatch]. Under load it grows
// toward MaxBatch (gaps shrink); on a quiet wire it collapses to 1.
func (c *batchController) target() int {
	if !c.adaptive {
		return c.maxBatch
	}
	if c.ewmaGapUS <= 0 || c.ewmaApplyUS <= 0 {
		return 1 // no rate estimate yet: don't hold anything hostage
	}
	t := int(c.ewmaApplyUS / c.ewmaGapUS)
	if t < 1 {
		t = 1
	}
	if t > c.maxBatch {
		t = c.maxBatch
	}
	return t
}

// hold returns how much longer a starved pipeline (idle applier) should
// keep the head epoch open, given its fill and first-admission instant.
// A result <= 0 means dispatch now.
func (c *batchController) hold(now, firstAdmit time.Time, fill int) time.Duration {
	if fill >= c.maxBatch || fill >= c.target() {
		return 0
	}
	if !c.adaptive {
		return c.maxWait - now.Sub(firstAdmit)
	}
	grace := time.Duration(ctrlGrace * c.ewmaGapUS * float64(time.Microsecond))
	if grace < c.minWait {
		grace = c.minWait
	}
	if grace > c.maxWait {
		grace = c.maxWait
	}
	return c.lastArrival.Add(grace).Sub(now)
}
