package serve

import (
	"runtime"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// ObsConfig sizes the live observability plane a serving host attaches to
// one Server: the admin HTTP endpoint, rolling-window stats, per-request
// pipeline tracing, and the recovery audit trail.
type ObsConfig struct {
	AdminAddr string // admin HTTP listen address ("" = no admin endpoint)

	SampleEvery uint64        // trace every Nth request (0 = obs default)
	Slow        time.Duration // always trace requests at least this slow (0 = obs default)
	TraceBuf    int           // trace ring capacity (0 = obs default)

	AuditPath string // JSONL audit sink file ("" = ring only)
	AuditBuf  int    // audit ring capacity (0 = obs default)

	Tick time.Duration // rolling-window snapshot cadence (0 = obs default)
}

// ObsPlane owns the observability machinery for one serving host. Build it
// BEFORE the Server (its Tracer/Audit go into the server Config), then
// Start it with the built server to bring up the admin endpoint and the
// window ticker, and Stop it after shutdown.
type ObsPlane struct {
	Tracer  *obs.RequestTracer
	Audit   *obs.AuditLog
	Windows *obs.Windows
	Admin   *obs.Admin
	cfg     ObsConfig
}

// NewObsPlane builds the plane's passive pieces (tracer, audit log, audit
// file sink). Nothing is listening or ticking yet.
func NewObsPlane(cfg ObsConfig) (*ObsPlane, error) {
	p := &ObsPlane{
		Tracer: obs.NewRequestTracer(cfg.SampleEvery, cfg.Slow, cfg.TraceBuf),
		Audit:  obs.NewAuditLog(cfg.AuditBuf),
		cfg:    cfg,
	}
	if cfg.AuditPath != "" {
		if err := p.Audit.OpenFile(cfg.AuditPath); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Apply copies the plane's hooks into a server Config (call between
// NewObsPlane and NewServer).
func (p *ObsPlane) Apply(cfg *Config) {
	if p == nil {
		return
	}
	cfg.Trace = p.Tracer
	cfg.Audit = p.Audit
}

// Start brings the plane live against a built server: the rolling-window
// ticker over the server's registry, and (when AdminAddr is set) the admin
// HTTP endpoint. Returns the bound admin address ("" when no admin).
func (p *ObsPlane) Start(srv *Server) (string, error) {
	if p == nil {
		return "", nil
	}
	reg := srv.Registry()
	p.Windows = obs.NewWindows(reg, p.cfg.Tick, 0)
	p.Windows.Start()
	if p.cfg.AdminAddr == "" {
		return "", nil
	}
	p.Admin = obs.NewAdmin(obs.AdminOptions{
		Registry: reg,
		Tracer:   p.Tracer,
		Status:   func() any { return p.StatusDoc(srv) },
		Healthy: func() (bool, string) {
			if srv.Draining() {
				return false, "draining"
			}
			return true, "ok"
		},
	})
	addr, err := p.Admin.ListenAndServe(p.cfg.AdminAddr)
	if err != nil {
		return "", err
	}
	return addr.String(), nil
}

// Stop tears the plane down: admin listener, window ticker, audit sink.
func (p *ObsPlane) Stop() {
	if p == nil {
		return
	}
	p.Admin.Close()
	p.Windows.Stop()
	p.Audit.Close()
}

// StatusDoc is the /statusz document: uptime and build info, windowed
// throughput/latency over the request histogram, per-shard pipeline state,
// trace-capture counts, and the audit-trail tail.
type StatusDoc struct {
	UptimeS   float64             `json:"uptime_s"`
	GoVersion string              `json:"go_version"`
	OSArch    string              `json:"os_arch"`
	Mode      string              `json:"mode"`
	Shards    int                 `json:"shards"`
	Draining  bool                `json:"draining"`
	Rejected  int64               `json:"rejected"`
	Windows   []obs.WindowSummary `json:"windows"`
	ShardRows []ShardStatus       `json:"shard_status"`
	Txn       TxnStatus           `json:"txn"`
	Traces    TraceStats          `json:"traces"`
	AuditTail []obs.AuditEvent    `json:"audit_tail,omitempty"`
}

// TraceStats counts request-trace captures for /statusz.
type TraceStats struct {
	Captured int64 `json:"captured"`
	Slow     int64 `json:"slow"`
}

// statusAuditTail bounds the audit events inlined into /statusz (the full
// trail lives in the ring / JSONL sink).
const statusAuditTail = 16

// StatusDoc builds the current /statusz document for srv.
func (p *ObsPlane) StatusDoc(srv *Server) StatusDoc {
	doc := StatusDoc{
		UptimeS:   srv.Uptime().Seconds(),
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		Mode:      srv.cfg.Mode.String(),
		Shards:    srv.cfg.Shards,
		Draining:  srv.Draining(),
		Rejected:  srv.cRejected.Value(),
		ShardRows: srv.Status(),
		Txn:       srv.TxnStatus(),
		AuditTail: p.Audit.Tail(statusAuditTail),
	}
	doc.Windows = p.Windows.Summary("serve.request_us", obs.StandardWindows...)
	doc.Traces.Captured, doc.Traces.Slow = p.Tracer.Captured()
	return doc
}

// ExportWallSpans appends the captured request traces to the run's
// Chrome-trace exporter as wall-clock spans on their own process lane.
func (p *ObsPlane) ExportWallSpans(tel *telemetry.Telemetry, epochZero time.Time) {
	if p == nil {
		return
	}
	obs.AppendWallSpans(tel.Tracer(), "serve/requests(wall)", epochZero, p.Tracer.Last(0))
}
