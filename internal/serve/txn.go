package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Protocol version 2 adds MVCC snapshot-isolation transactions on top of
// the v1 line protocol. A connection starts in v1; sending
//
//	HELLO <ver>                       ->  HELLO <negotiated> <shards>
//
// negotiates up to min(ver, 2) and reports the server's shard count (write
// sets of one transaction must stay on one shard: keys agreeing mod the
// shard count). The v2 verbs:
//
//	TXN                               ->  BEGIN <snap>
//	GET <key> @<snap>                 ->  VALUE <v> | NOTFOUND | ERR snapshot too old
//	COMMIT <snap> [S <k> <v>|D <k>]…  ->  COMMITTED <cts> | ABORT <key> | ERR …
//	ABORT <snap>                      ->  ABORTED
//
// BEGIN hands out the oracle's stable snapshot floor: every commit unit at
// or below it is already durable, so snapshot reads never see a
// half-committed epoch and never block on one. COMMIT's write set is
// validated first-committer-wins (ABORT names the first conflicting key)
// and commits atomically inside one kernel epoch. All v1 verbs (and the
// @<cid>.<seq> exactly-once prefix) keep working unchanged; a COMMIT
// retried after its window entry aged out is acknowledged "COMMITTED 0"
// (commit timestamp elided — only its success survived).
const maxProtoVersion = 2

// txnOp is a transaction COMMIT's write set riding a request (op 'C').
type txnOp struct {
	snap uint64 // snapshot the transaction read at
	keys []uint64
	vals []uint64
	dels []bool
	cts  uint64 // commit timestamp, assigned at admission after validation
}

// connState is one connection's protocol state: the negotiated version and
// the snapshots it holds open (TXN issued, not yet committed or aborted).
type connState struct {
	ver   int
	snaps map[uint64]int
}

func (st *connState) hold(ts uint64) {
	if st.snaps == nil {
		st.snaps = make(map[uint64]int)
	}
	st.snaps[ts]++
}

// drop forgets one hold on ts and reports whether the connection really
// held it — duplicated ABORT lines (retries, network duplication) must not
// release another transaction's registry hold.
func (st *connState) drop(ts uint64) bool {
	if st.snaps[ts] <= 0 {
		return false
	}
	st.snaps[ts]--
	if st.snaps[ts] == 0 {
		delete(st.snaps, ts)
	}
	return true
}

// releaseAll returns every still-open hold to the registry (connection
// teardown: an abandoned transaction must not pin the GC watermark).
func (st *connState) releaseAll(sr *snapRegistry) {
	for ts, n := range st.snaps {
		for i := 0; i < n; i++ {
			sr.release(ts)
		}
	}
	st.snaps = nil
}

// parseHello recognizes the version-negotiation line (with an optional
// request-ID prefix). ok=false means the line is not a HELLO at all.
func parseHello(line string) (rid ReqID, ver int, ok bool) {
	fields := strings.Fields(line)
	i := 0
	if len(fields) > 0 && strings.HasPrefix(fields[0], "@") {
		cidS, seqS, cut := strings.Cut(fields[0][1:], ".")
		if !cut {
			return ReqID{}, 0, false
		}
		cid, err1 := strconv.ParseUint(cidS, 10, 64)
		seq, err2 := strconv.ParseUint(seqS, 10, 64)
		if err1 != nil || err2 != nil {
			return ReqID{}, 0, false
		}
		rid = ReqID{CID: cid, Seq: seq}
		i = 1
	}
	if len(fields)-i != 2 || !strings.EqualFold(fields[i], "HELLO") {
		return ReqID{}, 0, false
	}
	v, err := strconv.Atoi(fields[i+1])
	if err != nil {
		v = 0 // recognized HELLO with a bad version: caller answers ERR
	}
	return rid, v, true
}

// v2Req is one parsed protocol-v2 line.
type v2Req struct {
	op       byte // 'S','G','D','P','T','A','C','R' (R = snapshot read)
	key, val uint64
	rid      ReqID
	ts       uint64 // 'R': read snapshot; 'C'/'A': transaction snapshot
	keys     []uint64
	vals     []uint64
	dels     []bool
}

// parseRequestV2 parses the protocol-v2 superset grammar.
func parseRequestV2(line string) (q v2Req, err error) {
	fields := strings.Fields(line)
	if len(fields) > 0 && strings.HasPrefix(fields[0], "@") {
		cidS, seqS, ok := strings.Cut(fields[0][1:], ".")
		if !ok {
			return q, fmt.Errorf("request id must be @<cid>.<seq>")
		}
		q.rid.CID, err = strconv.ParseUint(cidS, 10, 64)
		if err == nil {
			q.rid.Seq, err = strconv.ParseUint(seqS, 10, 64)
		}
		if err != nil || q.rid.CID == 0 || q.rid.Seq == 0 {
			return v2Req{}, fmt.Errorf("request id parts must be decimal integers >= 1")
		}
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return q, fmt.Errorf("empty request")
	}
	verb := strings.ToUpper(fields[0])
	args := fields[1:]
	needKey := func(s string) (uint64, error) {
		k, err := strconv.ParseUint(s, 10, 64)
		if err != nil || k == 0 {
			return 0, fmt.Errorf("key must be a decimal integer >= 1")
		}
		return k, nil
	}
	needVal := func(s string) (uint64, error) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v == 0 {
			return 0, fmt.Errorf("value must be a decimal integer >= 1")
		}
		return v, nil
	}
	needTS := func(s string) (uint64, error) {
		t, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("snapshot must be a decimal integer")
		}
		return t, nil
	}
	switch verb {
	case "PING", "TXN":
		if len(args) != 0 {
			return q, fmt.Errorf("%s takes 0 argument(s)", verb)
		}
		q.op = verb[0] // 'P' / 'T'
	case "SET":
		if len(args) != 2 {
			return q, fmt.Errorf("SET takes 2 argument(s)")
		}
		q.op = 'S'
		if q.key, err = needKey(args[0]); err != nil {
			return q, err
		}
		if q.val, err = needVal(args[1]); err != nil {
			return q, err
		}
	case "DEL":
		if len(args) != 1 {
			return q, fmt.Errorf("DEL takes 1 argument(s)")
		}
		q.op = 'D'
		if q.key, err = needKey(args[0]); err != nil {
			return q, err
		}
	case "GET":
		if len(args) != 1 && len(args) != 2 {
			return q, fmt.Errorf("GET takes <key> [@<snap>]")
		}
		if q.key, err = needKey(args[0]); err != nil {
			return q, err
		}
		q.op = 'G'
		if len(args) == 2 {
			if !strings.HasPrefix(args[1], "@") {
				return q, fmt.Errorf("GET snapshot must be @<snap>")
			}
			if q.ts, err = needTS(args[1][1:]); err != nil {
				return q, err
			}
			q.op = 'R'
		}
	case "ABORT":
		if len(args) != 1 {
			return q, fmt.Errorf("ABORT takes 1 argument(s)")
		}
		q.op = 'A'
		if q.ts, err = needTS(args[0]); err != nil {
			return q, err
		}
	case "COMMIT":
		if len(args) < 1 {
			return q, fmt.Errorf("COMMIT takes <snap> [S <key> <val> | D <key>]...")
		}
		q.op = 'C'
		if q.ts, err = needTS(args[0]); err != nil {
			return q, err
		}
		for i := 1; i < len(args); {
			switch strings.ToUpper(args[i]) {
			case "S":
				if i+3 > len(args) {
					return q, fmt.Errorf("COMMIT write S needs <key> <val>")
				}
				k, err := needKey(args[i+1])
				if err != nil {
					return q, err
				}
				v, err := needVal(args[i+2])
				if err != nil {
					return q, err
				}
				q.keys = append(q.keys, k)
				q.vals = append(q.vals, v)
				q.dels = append(q.dels, false)
				i += 3
			case "D":
				if i+2 > len(args) {
					return q, fmt.Errorf("COMMIT write D needs <key>")
				}
				k, err := needKey(args[i+1])
				if err != nil {
					return q, err
				}
				q.keys = append(q.keys, k)
				q.vals = append(q.vals, 0)
				q.dels = append(q.dels, true)
				i += 2
			default:
				return q, fmt.Errorf("COMMIT write must be S <key> <val> or D <key>")
			}
		}
	default:
		return q, fmt.Errorf("unknown verb %q", fields[0])
	}
	return q, nil
}

// txnFingerprint condenses a COMMIT payload (snapshot + ordered write set)
// for ID-reuse detection, the transaction analogue of fingerprint().
func txnFingerprint(snap uint64, keys, vals []uint64, dels []bool) uint64 {
	h := mix64(snap + 0x9e3779b97f4a7c15)
	for i := range keys {
		d := uint64(0)
		if dels[i] {
			d = 1
		}
		h = mix64(h ^ mix64(keys[i]) ^ mix64(vals[i]+0xd1b54a32d192ed03) ^ d)
	}
	return h
}

// serveV2 dispatches one protocol-v2 line for a negotiated connection.
// Plain ops behave exactly as in v1; TXN/ABORT and snapshot reads are
// answered instantly at the connection (snapshots are stable by
// construction, so no epoch ride is needed); COMMITs with writes route
// through their home shard's batcher for validation, squash-staging, and
// exactly-once dedup.
func (s *Server) serveV2(line string, st *connState, instant func(string), futures chan chan string) {
	q, err := parseRequestV2(line)
	if err != nil {
		instant(idLine(q.rid, "ERR "+err.Error()))
		return
	}
	if q.op == 'P' {
		instant(idLine(q.rid, "PONG"))
		return
	}
	if s.draining.Load() {
		instant(idLine(q.rid, "ERR server draining"))
		s.cRejected.Inc()
		return
	}
	switch q.op {
	case 'T':
		// A snapshot is the oracle's stable floor: every commit unit at or
		// below it has group-committed or rolled back. Registering it pins
		// the version-chain GC watermark until the transaction ends.
		snap := s.oracle.snapshot()
		s.snaps.acquire(snap)
		st.hold(snap)
		instant(idLine(q.rid, "BEGIN "+strconv.FormatUint(snap, 10)))
	case 'A':
		if st.drop(q.ts) {
			s.snaps.release(q.ts)
		}
		instant(idLine(q.rid, "ABORTED"))
	case 'R':
		if q.ts > s.oracle.current() {
			instant(idLine(q.rid, "ERR invalid snapshot"))
			return
		}
		val, ok, tooOld := s.shardFor(q.key).shard.MVCCReadAt(q.key, q.ts)
		switch {
		case tooOld:
			instant(idLine(q.rid, "ERR snapshot too old"))
		case ok:
			instant(idLine(q.rid, "VALUE "+strconv.FormatUint(val, 10)))
		default:
			instant(idLine(q.rid, "NOTFOUND"))
		}
	case 'C':
		if len(q.keys) == 0 {
			// Read-only transaction: nothing to validate or persist; its
			// "commit timestamp" is the snapshot it read at.
			if st.drop(q.ts) {
				s.snaps.release(q.ts)
			}
			instant(idLine(q.rid, "COMMITTED "+strconv.FormatUint(q.ts, 10)))
			return
		}
		if len(q.keys) > s.cfg.MaxBatch {
			instant(idLine(q.rid, fmt.Sprintf("ERR transaction write set exceeds max batch (%d)", s.cfg.MaxBatch)))
			return
		}
		w := s.shardFor(q.keys[0])
		for _, k := range q.keys[1:] {
			if s.shardFor(k) != w {
				instant(idLine(q.rid, "ERR transaction write set spans shards (keys must agree mod shard count)"))
				return
			}
		}
		// The registry hold protected this transaction's snapshot READS.
		// Conflict validation needs only each key's newest version
		// timestamp, which GC never trims, so the hold can go before the
		// verdict — a retried COMMIT (even from a fresh connection) still
		// validates correctly.
		if st.drop(q.ts) {
			s.snaps.release(q.ts)
		}
		r := &request{
			op: 'C', key: q.keys[0], id: s.nextID.Add(1), rid: q.rid,
			enq: time.Now(), done: make(chan string, 1),
			txn: &txnOp{snap: q.ts, keys: q.keys, vals: q.vals, dels: q.dels},
		}
		if !q.rid.Zero() {
			r.fpr = txnFingerprint(q.ts, q.keys, q.vals, q.dels)
		}
		w.reqs <- r
		futures <- r.done
	default: // 'S', 'G', 'D'
		r := &request{op: q.op, key: q.key, val: q.val, id: s.nextID.Add(1), rid: q.rid, enq: time.Now(), done: make(chan string, 1)}
		if !q.rid.Zero() {
			r.fpr = fingerprint(q.op, q.key, q.val)
		}
		s.shardFor(q.key).reqs <- r
		futures <- r.done
	}
}

// TxnStatus is the /statusz transaction section: live snapshot count and
// the oracle's allocation/stability frontier, plus each shard's MVCC read
// floor (the oldest snapshot its version chains can still answer).
type TxnStatus struct {
	ActiveSnapshots int      `json:"active_snapshots"`
	OracleTS        uint64   `json:"oracle_ts"`
	StableFloor     uint64   `json:"stable_floor"`
	MVCCFloors      []uint64 `json:"mvcc_floor_by_shard"`
}

// TxnStatus reports the server's MVCC/transaction state (safe from any
// goroutine while serving).
func (s *Server) TxnStatus() TxnStatus {
	ts := TxnStatus{
		ActiveSnapshots: s.snaps.active(),
		OracleTS:        s.oracle.current(),
		StableFloor:     s.oracle.snapshot(),
	}
	for _, w := range s.workers {
		ts.MVCCFloors = append(ts.MVCCFloors, w.shard.MVCCFloor())
	}
	return ts
}
