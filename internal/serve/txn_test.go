package serve

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// HELLO negotiates the protocol: capped at the server's max, refused below
// 1, and a connection that never sends it stays v1 (txn verbs unknown).
func TestHelloNegotiation(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	defer srv.Shutdown(5 * time.Second)
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	// A v1 connection does not know the v2 verbs.
	if got := rt("TXN"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("TXN before HELLO -> %q, want ERR", got)
	}
	if got := rt("HELLO 0"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("HELLO 0 -> %q, want ERR", got)
	}
	// Asking beyond the max negotiates down to it.
	if got := rt("HELLO 99"); got != "HELLO 2 2" {
		t.Errorf("HELLO 99 -> %q, want HELLO 2 2", got)
	}
	if got := rt("TXN"); !strings.HasPrefix(got, "BEGIN ") {
		t.Errorf("TXN after HELLO -> %q, want BEGIN", got)
	}

	// A second connection negotiating exactly v1 stays v1.
	br2, c2 := dial(t, addr)
	defer c2.Close()
	rt2 := func(req string) string { return roundTrip(t, c2, br2, req) }
	if got := rt2("HELLO 1"); got != "HELLO 1 2" {
		t.Errorf("HELLO 1 -> %q, want HELLO 1 2", got)
	}
	if got := rt2("TXN"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("TXN on v1 -> %q, want ERR", got)
	}
	if got := rt2("SET 7 70"); got != "OK" {
		t.Errorf("v1 SET -> %q", got)
	}
}

// beginTxn negotiates v2 (idempotent) and opens a transaction.
func beginTxn(t *testing.T, rt func(string) string) uint64 {
	t.Helper()
	got := rt("TXN")
	rest, ok := strings.CutPrefix(got, "BEGIN ")
	if !ok {
		t.Fatalf("TXN -> %q, want BEGIN <snap>", got)
	}
	snap, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		t.Fatalf("TXN -> %q: %v", got, err)
	}
	return snap
}

// Snapshot reads stay stable while later commits land, writes are
// invisible until COMMIT, and the committed write set is atomic.
func TestTxnSnapshotIsolation(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	defer srv.Shutdown(5 * time.Second)
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("HELLO 2"); got != "HELLO 2 2" {
		t.Fatalf("HELLO -> %q", got)
	}
	if got := rt("SET 2 20"); got != "OK" {
		t.Fatalf("seed -> %q", got)
	}
	snap := beginTxn(t, rt)
	if got := rt(fmt.Sprintf("GET 2 @%d", snap)); got != "VALUE 20" {
		t.Fatalf("snapshot read -> %q, want VALUE 20", got)
	}
	// A later plain SET does not disturb the open snapshot.
	if got := rt("SET 2 21"); got != "OK" {
		t.Fatalf("overwrite -> %q", got)
	}
	if got := rt("GET 2"); got != "VALUE 21" {
		t.Errorf("latest read -> %q, want VALUE 21", got)
	}
	if got := rt(fmt.Sprintf("GET 2 @%d", snap)); got != "VALUE 20" {
		t.Errorf("snapshot read after overwrite -> %q, want VALUE 20 (repeatable)", got)
	}
	// Transactions commit atomically: both keys (same shard: mod 2) or none.
	snap2 := beginTxn(t, rt)
	reply := rt(fmt.Sprintf("COMMIT %d S 4 40 D 6", snap2))
	if !strings.HasPrefix(reply, "COMMITTED ") {
		t.Fatalf("COMMIT -> %q", reply)
	}
	cts, _ := strconv.ParseUint(strings.TrimPrefix(reply, "COMMITTED "), 10, 64)
	if cts <= snap2 {
		t.Errorf("commit ts %d not past snapshot %d", cts, snap2)
	}
	if got := rt("GET 4"); got != "VALUE 40" {
		t.Errorf("committed write -> %q, want VALUE 40", got)
	}
	// Read-only commit resolves instantly at its own snapshot.
	snap3 := beginTxn(t, rt)
	if got := rt(fmt.Sprintf("COMMIT %d", snap3)); got != "COMMITTED "+strconv.FormatUint(snap3, 10) {
		t.Errorf("read-only COMMIT -> %q", got)
	}
	// ABORT releases without writing.
	snap4 := beginTxn(t, rt)
	if got := rt(fmt.Sprintf("ABORT %d", snap4)); got != "ABORTED" {
		t.Errorf("ABORT -> %q", got)
	}
	// Write-set sanity errors.
	snap5 := beginTxn(t, rt)
	if got := rt(fmt.Sprintf("COMMIT %d S 3 30 S 4 40", snap5)); !strings.Contains(got, "spans shards") {
		t.Errorf("cross-shard COMMIT -> %q, want spans-shards ERR", got)
	}
}

// Two transactions from one snapshot, COMMITs pipelined into the same
// batching window: disjoint write sets both commit (sharing an epoch);
// overlapping write sets abort the second, first-committer-wins.
func TestTxnSameEpochConflicts(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 16,
		BatchWait: 50 * time.Millisecond, Workers: 1, Telemetry: tel,
	})
	defer srv.Shutdown(5 * time.Second)
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO -> %q", got)
	}
	snapA := beginTxn(t, rt)
	snapB := beginTxn(t, rt)

	// Disjoint write sets, pipelined without waiting: both must commit.
	if _, err := fmt.Fprintf(c, "COMMIT %d S 11 1 S 13 1\nCOMMIT %d S 12 1 S 14 1\n", snapA, snapB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(line); !strings.HasPrefix(got, "COMMITTED ") {
			t.Fatalf("disjoint commit %d -> %q, want COMMITTED", i, got)
		}
	}

	// Overlapping write sets: key 15 in both. First commits, second aborts.
	snapC := beginTxn(t, rt)
	snapD := beginTxn(t, rt)
	if _, err := fmt.Fprintf(c, "COMMIT %d S 15 1 S 17 1\nCOMMIT %d S 15 2 S 19 1\n", snapC, snapD); err != nil {
		t.Fatal(err)
	}
	var verdicts []string
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, strings.TrimSpace(line))
	}
	if !strings.HasPrefix(verdicts[0], "COMMITTED ") {
		t.Errorf("first overlapping commit -> %q, want COMMITTED", verdicts[0])
	}
	if verdicts[1] != "ABORT 15" {
		t.Errorf("second overlapping commit -> %q, want ABORT 15", verdicts[1])
	}
	// The losing write set left nothing behind.
	if got := rt("GET 19"); got != "NOTFOUND" {
		t.Errorf("aborted txn's key -> %q, want NOTFOUND", got)
	}
	if got := rt("GET 15"); got != "VALUE 1" {
		t.Errorf("winning txn's key -> %q, want VALUE 1", got)
	}
	if n := tel.Registry().Counter("serve.shard0.txn_commits").Value(); n != 3 {
		t.Errorf("txn_commits = %d, want 3", n)
	}
	if n := tel.Registry().Counter("serve.shard0.txn_aborts").Value(); n != 1 {
		t.Errorf("txn_aborts = %d, want 1", n)
	}
}

// A retried COMMIT replays its original verdict — COMMITTED with the same
// timestamp, or the same ABORT — without touching the store again.
func TestTxnRetryReplaysVerdict(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO -> %q", got)
	}
	snap := beginTxn(t, rt)
	first := rt(fmt.Sprintf("@1.1 COMMIT %d S 5 50", snap))
	if !strings.HasPrefix(first, "@1.1 COMMITTED ") {
		t.Fatalf("identified COMMIT -> %q", first)
	}
	for i := 0; i < 3; i++ {
		if got := rt(fmt.Sprintf("@1.1 COMMIT %d S 5 50", snap)); got != first {
			t.Errorf("COMMIT retry %d -> %q, want replay %q", i, got, first)
		}
	}
	// Same ID with a different payload is an error, not a replay.
	if got := rt(fmt.Sprintf("@1.1 COMMIT %d S 5 51", snap)); !strings.Contains(got, "different payload") {
		t.Errorf("COMMIT id reuse -> %q, want different-payload ERR", got)
	}

	// Force an abort, then retry it: the ABORT verdict must replay too.
	if got := rt("SET 7 1"); got != "OK" {
		t.Fatalf("seed -> %q", got)
	}
	staleSnap := snap // key 7 committed after this snapshot
	abort := rt(fmt.Sprintf("@1.2 COMMIT %d S 7 99", staleSnap))
	if abort != "@1.2 ABORT 7" {
		t.Fatalf("stale COMMIT -> %q, want @1.2 ABORT 7", abort)
	}
	for i := 0; i < 3; i++ {
		if got := rt(fmt.Sprintf("@1.2 COMMIT %d S 7 99", staleSnap)); got != abort {
			t.Errorf("ABORT retry %d -> %q, want replay %q", i, got, abort)
		}
	}
	if got := rt("GET 7"); got != "VALUE 1" {
		t.Errorf("aborted commit leaked: GET 7 -> %q, want VALUE 1", got)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
}

// A torn final line — a COMMIT cut mid-write by a dying connection — must
// never execute, even when the torn prefix parses as a valid SHORTER
// commit. Executing it would stage a one-key transaction under the full
// request's ID; the client's retry would then attach to it and be acked
// COMMITTED while the cut keys were silently lost.
func TestTornCommitLineNeverExecutes(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	rt := func(req string) string { return roundTrip(t, c, br, req) }
	if got := rt("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO -> %q", got)
	}
	snap := beginTxn(t, rt)
	// The connection dies mid-COMMIT: only the first write survives on the
	// wire, and the truncation lands on a token boundary.
	if _, err := fmt.Fprintf(c, "@1.1 COMMIT %d S 5 1", snap); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	c.Close()
	time.Sleep(50 * time.Millisecond) // let the server drain the dead conn

	// The client never saw an ack, so it retries the WHOLE line.
	br2, c2 := dial(t, addr)
	defer c2.Close()
	rt2 := func(req string) string { return roundTrip(t, c2, br2, req) }
	if got := rt2("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO (retry conn) -> %q", got)
	}
	verdict := rt2(fmt.Sprintf("@1.1 COMMIT %d S 5 1 S 6 1", snap))
	if !strings.HasPrefix(verdict, "@1.1 COMMITTED ") {
		t.Fatalf("retried full COMMIT -> %q, want COMMITTED", verdict)
	}
	for _, key := range []uint64{5, 6} {
		if got := rt2(fmt.Sprintf("GET %d", key)); got != "VALUE 1" {
			t.Errorf("GET %d -> %q, want VALUE 1 (torn prefix must not have won)", key, got)
		}
	}
	c2.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
}

// A duplicate carrying the same ID as an in-flight request but a DIFFERENT
// payload must be rejected, not attached: attaching would acknowledge this
// payload with the pending one's verdict. The window and abort ledgers
// already reject such reuse; pending must too.
func TestDedupPendingRejectsDifferentPayload(t *testing.T) {
	d := newDedupState(8)
	orig := &request{op: 'C', rid: ReqID{CID: 1, Seq: 1}, fpr: 42, done: make(chan string, 1)}
	d.register(orig)

	dup := &request{op: 'C', rid: ReqID{CID: 1, Seq: 1}, fpr: 99, done: make(chan string, 1)}
	if v, reply := d.check(dup); v != dedupReject || !strings.Contains(reply, "different payload") {
		t.Errorf("pending id reuse -> (%d, %q), want reject with different-payload ERR", v, reply)
	}
	same := &request{op: 'C', rid: ReqID{CID: 1, Seq: 1}, fpr: 42, done: make(chan string, 1)}
	if v, _ := d.check(same); v != dedupAttach {
		t.Errorf("same-payload duplicate -> %d, want attach", v)
	}
	if len(orig.dups) != 1 {
		t.Errorf("original has %d attached waiters, want 1", len(orig.dups))
	}
}

// The hwm-absorb path answers an aged-out COMMIT retry "COMMITTED 0" (the
// commit survived, its timestamp did not), and an aged-out aborted COMMIT
// keeps replaying ABORT from the permanent ledger — never absorbed as OK.
func TestTxnDedupAbsorbAndAbortLedger(t *testing.T) {
	d := newDedupState(2) // tiny window so entries age out fast
	mk := func(seq uint64, op byte) *request {
		return &request{op: op, rid: ReqID{CID: 1, Seq: seq}, fpr: 42, done: make(chan string, 1)}
	}
	// Seq 1: a committed transaction COMMIT.
	c1 := mk(1, 'C')
	d.register(c1)
	d.commit(c1, "@1.1 COMMITTED 77")
	// Seq 2: an aborted COMMIT (decided, never committed).
	d.rememberAbort(ReqID{CID: 1, Seq: 2}, 43, "@1.2 ABORT 9")
	// Age both window entries out.
	for seq := uint64(3); seq <= 6; seq++ {
		r := mk(seq, 'S')
		d.register(r)
		d.commit(r, "@1.x OK")
	}
	// The committed COMMIT's window entry is gone; its seq is under the
	// hwm, so the verdict is absorbed with the timestamp elided.
	v, reply := d.check(mk(1, 'C'))
	if v != dedupReplay || reply != "@1.1 COMMITTED 0" {
		t.Errorf("aged committed COMMIT -> (%d, %q), want replay COMMITTED 0", v, reply)
	}
	// The aborted COMMIT replays from the ledger even though its window
	// entry aged out and later seqs advanced the hwm past it.
	ab := mk(2, 'C')
	ab.fpr = 43
	v, reply = d.check(ab)
	if v != dedupReplay || reply != "@1.2 ABORT 9" {
		t.Errorf("aged aborted COMMIT -> (%d, %q), want replay ABORT 9", v, reply)
	}
}

// The oracle never hands out a timestamp at or below anything it issued
// before a crash: commit timestamps stay monotone across crash-restart.
func TestOracleMonotoneAcrossRestart(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO -> %q", got)
	}
	snap := beginTxn(t, rt)
	reply := rt(fmt.Sprintf("COMMIT %d S 3 30", snap))
	if !strings.HasPrefix(reply, "COMMITTED ") {
		t.Fatalf("COMMIT -> %q", reply)
	}
	preCTS, _ := strconv.ParseUint(strings.TrimPrefix(reply, "COMMITTED "), 10, 64)

	// Crash the shard on its next mutation epoch; the identified SET rides
	// it, gets RETRY, and the retry drives recovery.
	srv.Shards()[0].SetCrashPlan(&ShardCrashPlan{ApplyIndex: 1, Point: CrashBeforeKernel})
	if got := rt("@1.1 SET 5 50"); got != "@1.1 RETRY" {
		t.Fatalf("crashed SET -> %q, want RETRY", got)
	}
	if got := retryTrip(t, rt, "@1.1 SET 5 50"); got != "@1.1 OK" {
		t.Fatalf("retry after restart -> %q", got)
	}

	snap2 := beginTxn(t, rt)
	reply2 := rt(fmt.Sprintf("COMMIT %d S 7 70", snap2))
	if !strings.HasPrefix(reply2, "COMMITTED ") {
		t.Fatalf("post-restart COMMIT -> %q", reply2)
	}
	postCTS, _ := strconv.ParseUint(strings.TrimPrefix(reply2, "COMMITTED "), 10, 64)
	if postCTS <= preCTS {
		t.Errorf("post-restart commit ts %d <= pre-crash ts %d: oracle regressed", postCTS, preCTS)
	}
	if hwm := srv.Shards()[0].RecoveredOracleHWM(); hwm == 0 {
		t.Error("no durable oracle reservation recovered")
	}
	// Pre-crash snapshots are gone: the MVCC floor rose past them.
	if got := rt(fmt.Sprintf("GET 3 @%d", snap)); got != "ERR snapshot too old" {
		t.Errorf("pre-crash snapshot read -> %q, want ERR snapshot too old", got)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
}

// GC never reclaims a version an open snapshot can still read: the
// snapshot registry pins the watermark, and only releasing the snapshot
// lets the floor pass it.
func TestTxnGCWatermarkSafety(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	defer srv.Shutdown(5 * time.Second)
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("HELLO 2"); got != "HELLO 2 1" {
		t.Fatalf("HELLO -> %q", got)
	}
	if got := rt("SET 9 1"); got != "OK" {
		t.Fatalf("seed -> %q", got)
	}
	snap := beginTxn(t, rt)

	// Push far more than mvccGCEvery epoch commits past the snapshot.
	for i := 0; i < 3*mvccGCEvery; i++ {
		if got := rt(fmt.Sprintf("SET 9 %d", i+2)); got != "OK" {
			t.Fatalf("churn SET -> %q", got)
		}
	}
	// The open snapshot still answers with its version.
	if got := rt(fmt.Sprintf("GET 9 @%d", snap)); got != "VALUE 1" {
		t.Errorf("pinned snapshot read -> %q, want VALUE 1", got)
	}
	if got := rt(fmt.Sprintf("ABORT %d", snap)); got != "ABORTED" {
		t.Fatalf("ABORT -> %q", got)
	}
	// With the pin gone, more churn lets GC pass the old snapshot.
	for i := 0; i < 3*mvccGCEvery; i++ {
		if got := rt(fmt.Sprintf("SET 9 %d", i+100)); got != "OK" {
			t.Fatalf("churn SET -> %q", got)
		}
	}
	if got := rt(fmt.Sprintf("GET 9 @%d", snap)); got != "ERR snapshot too old" {
		t.Errorf("released snapshot read -> %q, want ERR snapshot too old", got)
	}
}

// RunTxnLoad's ledger matches the durable store: every key's final count
// equals its committed increments (no crashes, so nothing unresolved).
func TestRunTxnLoadLedger(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 256, MaxBatch: 32,
		BatchWait: 200 * time.Microsecond, Workers: 1, Telemetry: tel,
	})
	res, err := RunTxnLoad(TxnLoadConfig{
		Addr: addr, Conns: 3, Txns: 90, TxnSize: 3,
		KeyBase: 1000, KeySpace: 64, Seed: 7, Retry: true,
	})
	if err != nil {
		t.Fatalf("RunTxnLoad: %v", err)
	}
	if res.Txns+res.AbortedForGood != 90 {
		t.Errorf("resolved %d committed + %d dropped, want 90 total", res.Txns, res.AbortedForGood)
	}
	if res.GaveUp != 0 || res.Errors != 0 || len(res.Failures) != 0 {
		t.Errorf("gaveUp=%d errors=%d failures=%v, want clean run", res.GaveUp, res.Errors, res.Failures)
	}
	if res.ReadAnomalies != 0 {
		t.Errorf("%d repeatable-read anomalies inside snapshots", res.ReadAnomalies)
	}
	if res.Shards != 2 {
		t.Errorf("negotiated shard count %d, want 2", res.Shards)
	}

	// Durable counts must equal the committed ledger exactly.
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }
	for k, n := range res.Committed {
		want := "VALUE " + strconv.FormatInt(n, 10)
		if got := rt(fmt.Sprintf("GET %d", k)); got != want {
			t.Errorf("key %d: durable %q, ledger wants %q", k, got, want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)

	reg := tel.Registry()
	var commits, aborts int64
	for i := 0; i < 2; i++ {
		commits += reg.Counter(fmt.Sprintf("serve.shard%d.txn_commits", i)).Value()
		aborts += reg.Counter(fmt.Sprintf("serve.shard%d.txn_aborts", i)).Value()
	}
	if commits != res.Txns {
		t.Errorf("server counted %d txn commits, clients %d", commits, res.Txns)
	}
	if aborts != res.Aborts {
		t.Errorf("server counted %d txn aborts, clients %d", aborts, res.Aborts)
	}
	assertExactlyOnce(t, srv)
}
