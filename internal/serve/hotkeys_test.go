package serve

import "testing"

// The cache only serves slots it has been given committed state for, and
// a lookup is definitive: matching key -> value, different key -> the
// requested key is durably absent from that slot.
func TestHotKeyCacheLookupSemantics(t *testing.T) {
	h := newHotKeyCache(4)
	if _, ok := h.Lookup(1, 10); ok {
		t.Fatal("empty cache should miss")
	}
	h.Observe(1)
	h.Observe(1) // hot at minHits=2
	h.CommitSlot(10, 1, 100)
	if v, ok := h.Lookup(1, 10); !ok || v != 100 {
		t.Fatalf("Lookup(1) = (%d, %v), want (100, true)", v, ok)
	}
	// Another key hashing to the cached slot: durably absent.
	if v, ok := h.Lookup(2, 10); !ok || v != 0 {
		t.Fatalf("Lookup(2) = (%d, %v), want (0, true)", v, ok)
	}
}

// Cold keys never enter the value cache; committing a cold occupant drops
// the slot instead of refreshing it.
func TestHotKeyCacheColdKeysNotCached(t *testing.T) {
	h := newHotKeyCache(4)
	h.Observe(1) // one hit: below minHits
	h.CommitSlot(10, 1, 100)
	if _, ok := h.Lookup(1, 10); ok {
		t.Fatal("cold key should not be cached")
	}
	h.Observe(1)
	h.CommitSlot(10, 1, 100)
	if _, ok := h.Lookup(1, 10); !ok {
		t.Fatal("hot key should cache")
	}
	// Slot emptied (DEL): key 0 is never hot, entry must drop.
	h.CommitSlot(10, 0, 0)
	if _, ok := h.Lookup(1, 10); ok {
		t.Fatal("emptied slot should drop from the cache")
	}
}

// CommitSlot with new state must replace, not shadow, the old pair.
func TestHotKeyCacheRefreshOnCommit(t *testing.T) {
	h := newHotKeyCache(4)
	h.Observe(7)
	h.Observe(7)
	h.CommitSlot(3, 7, 70)
	h.CommitSlot(3, 7, 71)
	if v, ok := h.Lookup(7, 3); !ok || v != 71 {
		t.Fatalf("after refresh Lookup = (%d, %v), want (71, true)", v, ok)
	}
	// A different hot key taking over the slot evicts the old mapping.
	h.Observe(9)
	h.Observe(9)
	h.CommitSlot(3, 9, 90)
	if v, ok := h.Lookup(9, 3); !ok || v != 90 {
		t.Fatalf("takeover Lookup(9) = (%d, %v), want (90, true)", v, ok)
	}
	if v, ok := h.Lookup(7, 3); !ok || v != 0 {
		t.Fatalf("evicted Lookup(7) = (%d, %v), want (0, true) — absent", v, ok)
	}
}

// The space-saving sketch keeps at most k tracked keys; evicting a tracked
// key also evicts its cached slot, and the newcomer inherits count+1.
func TestHotKeyCacheSketchEviction(t *testing.T) {
	h := newHotKeyCache(2)
	for i := 0; i < 5; i++ {
		h.Observe(1) // clearly hottest
	}
	h.Observe(2)
	h.Observe(2)
	h.CommitSlot(11, 1, 10)
	h.CommitSlot(12, 2, 20)
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	// Key 3 displaces the coldest (2) and inherits its count: immediately
	// hot, while 2's cached slot goes with it.
	h.Observe(3)
	if !h.Hot(3) {
		t.Error("newcomer should inherit the evictee's count and be hot")
	}
	if _, ok := h.Lookup(2, 12); ok {
		t.Error("evicted key's slot should leave the cache")
	}
	if v, ok := h.Lookup(1, 11); !ok || v != 10 {
		t.Errorf("hottest key evicted: Lookup(1) = (%d, %v), want (10, true)", v, ok)
	}
}
