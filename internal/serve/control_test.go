package serve

import (
	"testing"
	"time"
)

// tick builds scripted instants: base + n microseconds.
func tick(base time.Time, us int64) time.Time {
	return base.Add(time.Duration(us) * time.Microsecond)
}

// Before any rate estimate exists the adaptive controller must not hold a
// lone request hostage: target 1, hold 0 for any non-empty epoch.
func TestControllerNoEstimateDispatchesImmediately(t *testing.T) {
	c := newBatchController(true, 256, 500*time.Microsecond)
	if got := c.target(); got != 1 {
		t.Errorf("cold target = %d, want 1", got)
	}
	base := time.Unix(1000, 0)
	c.observeArrival(base)
	if h := c.hold(tick(base, 1), base, 1); h > 0 {
		t.Errorf("cold hold = %v, want <= 0", h)
	}
}

// Under steady load the target converges to applyCost/gap: arrivals every
// 10µs against a 1000µs apply justify filling ~100 ops, capped by MaxBatch.
func TestControllerTargetTracksLoad(t *testing.T) {
	c := newBatchController(true, 256, 500*time.Microsecond)
	base := time.Unix(1000, 0)
	for i := int64(0); i < 200; i++ {
		c.observeArrival(tick(base, i*10))
	}
	for i := 0; i < 20; i++ {
		c.observeApply(1000 * time.Microsecond)
	}
	if got := c.target(); got < 80 || got > 120 {
		t.Errorf("target = %d, want ~100", got)
	}

	// Heavier load (1µs gaps) should push the target to the MaxBatch cap.
	for i := int64(0); i < 400; i++ {
		c.observeArrival(tick(base, 2000+i))
	}
	if got := c.target(); got != 256 {
		t.Errorf("saturated target = %d, want 256 (MaxBatch cap)", got)
	}
}

// A full epoch (fill >= MaxBatch) or one at target never holds.
func TestControllerFullEpochNeverHolds(t *testing.T) {
	c := newBatchController(true, 8, 500*time.Microsecond)
	base := time.Unix(1000, 0)
	for i := int64(0); i < 50; i++ {
		c.observeArrival(tick(base, i))
	}
	c.observeApply(time.Millisecond)
	if h := c.hold(tick(base, 50), base, 8); h != 0 {
		t.Errorf("full-epoch hold = %v, want 0", h)
	}
}

// The starved-pipeline grace is measured from the LAST arrival, a few
// smoothed gaps long, and clamped to [minWait, maxWait].
func TestControllerGraceFromLastArrival(t *testing.T) {
	c := newBatchController(true, 256, 500*time.Microsecond)
	base := time.Unix(1000, 0)
	for i := int64(0); i < 100; i++ {
		c.observeArrival(tick(base, i*50)) // steady 50µs gaps
	}
	c.observeApply(10 * time.Millisecond) // high target: holds are possible
	last := tick(base, 99*50)

	// Right at the last arrival the grace (~2 gaps = 100µs) is in front of us.
	h := c.hold(last, base, 1)
	if h < 50*time.Microsecond || h > 500*time.Microsecond {
		t.Errorf("hold at last arrival = %v, want ~100µs in (50µs, 500µs]", h)
	}
	// Once the grace has expired, dispatch.
	if h := c.hold(tick(base, 99*50+1000), base, 1); h > 0 {
		t.Errorf("hold after grace = %v, want <= 0", h)
	}
}

// With adaptive off the controller reproduces the fixed policy: hold until
// MaxWait has elapsed since the epoch's FIRST ADMISSION.
func TestControllerFixedPolicy(t *testing.T) {
	c := newBatchController(false, 256, 500*time.Microsecond)
	base := time.Unix(1000, 0)
	c.observeArrival(base)
	if got := c.target(); got != 256 {
		t.Errorf("fixed target = %d, want MaxBatch", got)
	}
	if h := c.hold(tick(base, 100), base, 1); h != 400*time.Microsecond {
		t.Errorf("fixed hold = %v, want 400µs", h)
	}
	if h := c.hold(tick(base, 600), base, 1); h > 0 {
		t.Errorf("fixed hold past deadline = %v, want <= 0", h)
	}
}

// Idle spells between bursts must not poison the rate estimate: a gap is
// clamped, so the target recovers as soon as the next burst lands.
func TestControllerIdleGapClamped(t *testing.T) {
	c := newBatchController(true, 256, 500*time.Microsecond)
	base := time.Unix(1000, 0)
	for i := int64(0); i < 100; i++ {
		c.observeArrival(tick(base, i*10))
	}
	c.observeApply(time.Millisecond)
	before := c.target()
	// A 10-second silence, then traffic resumes.
	c.observeArrival(tick(base, 10_000_000))
	for i := int64(0); i < 100; i++ {
		c.observeArrival(tick(base, 10_000_000+i*10))
	}
	if after := c.target(); after < before/2 {
		t.Errorf("target after idle spell = %d, want >= %d (gap clamp)", after, before/2)
	}
}
