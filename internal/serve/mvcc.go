package serve

import (
	"encoding/binary"
	"sort"
	"sync"

	"github.com/gpm-sim/gpm/internal/cpusim"
)

// mvccVersion is one committed value of a key: the commit timestamp and the
// value it installed (0 = tombstone — the key was deleted, or evicted by a
// colliding key claiming its slot).
type mvccVersion struct {
	ts  uint64
	val uint64
}

// mvccState is a shard's multi-version view of the committed store: per-key
// version chains (ascending ts) fed by epoch group-commits, bounded by the
// watermark GC. It answers snapshot reads (GET@ts), latest reads (plain
// GET), and conflict checks (latest commit ts of a key) without touching
// the kernel, so reads resolve against a stable snapshot while conflicting
// writers share one kernel epoch.
//
// Guarded by its own mutex: the applier commits versions at group-commit
// while the batcher resolves instant reads and connection goroutines serve
// GET@ts — version chains are the one store surface read outside the
// applier goroutine.
type mvccState struct {
	mu      sync.Mutex
	chains  map[uint64][]mvccVersion
	slotKey map[int]uint64 // slot -> committed occupant key (0 = empty)
	// floorTS is the oldest readable snapshot: versions at or below it may
	// have been garbage-collected (or predate a crash-restart rebuild), so a
	// read at ts < floorTS answers "snapshot too old" instead of lying.
	floorTS uint64
	maxTS   uint64 // highest version ts committed (legacy batches append past it)
}

func newMVCC() *mvccState {
	return &mvccState{chains: make(map[uint64][]mvccVersion), slotKey: make(map[int]uint64)}
}

// insertVersion places {ts, val} into key's chain keeping ascending ts.
// An entry at an ALREADY-PRESENT ts overwrites it — last writer wins at
// one timestamp: a multi-write transaction's rows share its commit ts (a
// later row of the same key supersedes an earlier one), and a colliding
// SET's eviction tombstone lands at the same ts as the SET itself.
func (m *mvccState) insertVersion(key, ts, val uint64) {
	ch := m.chains[key]
	if n := len(ch); n == 0 || ch[n-1].ts < ts {
		m.chains[key] = append(ch, mvccVersion{ts: ts, val: val})
	} else {
		i := sort.Search(n, func(i int) bool { return ch[i].ts >= ts })
		if i < n && ch[i].ts == ts {
			ch[i].val = val
		} else {
			ch = append(ch, mvccVersion{})
			copy(ch[i+1:], ch[i:])
			ch[i] = mvccVersion{ts: ts, val: val}
			m.chains[key] = ch
		}
	}
	if ts > m.maxTS {
		m.maxTS = ts
	}
}

// commitVer applies one committed logical mutation to the version view.
// A SET claims its slot: a colliding incumbent key is evicted, which is a
// delete at the same timestamp (the hash store holds one pair per slot).
func (m *mvccState) commitVer(key, val uint64, del bool, ts uint64, slot int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if del {
		m.insertVersion(key, ts, 0)
		if m.slotKey[slot] == key {
			delete(m.slotKey, slot)
		}
		return
	}
	if occ := m.slotKey[slot]; occ != 0 && occ != key {
		m.insertVersion(occ, ts, 0)
	}
	m.insertVersion(key, ts, val)
	m.slotKey[slot] = key
}

// readAt resolves key at snapshot ts: the newest version with version.ts <=
// ts. tooOld reports a snapshot below the GC floor — the caller must error
// rather than fabricate an answer from a trimmed chain.
func (m *mvccState) readAt(key, ts uint64) (val uint64, found, tooOld bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts < m.floorTS {
		return 0, false, true
	}
	ch := m.chains[key]
	for i := len(ch) - 1; i >= 0; i-- {
		if ch[i].ts <= ts {
			if ch[i].val == 0 {
				return 0, false, false
			}
			return ch[i].val, true, false
		}
	}
	return 0, false, false
}

// latest resolves key at the newest committed version.
func (m *mvccState) latest(key uint64) (val uint64, found bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := m.chains[key]
	if n := len(ch); n > 0 && ch[n-1].val != 0 {
		return ch[n-1].val, true
	}
	return 0, false
}

// latestTS returns the newest committed version timestamp of key (0 =
// never written) — the commit-window conflict check: a transaction at
// snapshot S conflicts on key when latestTS(key) > S.
func (m *mvccState) latestTS(key uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ch := m.chains[key]; len(ch) > 0 {
		return ch[len(ch)-1].ts
	}
	return 0
}

// slotImage returns the committed (key, value) occupying a slot — the base
// image epoch write-squashing folds staged mutations over.
func (m *mvccState) slotImage(slot int) (key, val uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	occ := m.slotKey[slot]
	if occ == 0 {
		return 0, 0
	}
	if ch := m.chains[occ]; len(ch) > 0 {
		return occ, ch[len(ch)-1].val
	}
	return 0, 0
}

// gc trims every chain to the newest version at or below the watermark
// plus everything newer, and raises the read floor to the watermark. The
// caller guarantees no live snapshot is below wm (watermark = min of open
// snapshots and the oracle's stable floor), so nothing readable is lost;
// chains whose surviving state is a single tombstone drop entirely.
func (m *mvccState) gc(wm uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wm <= m.floorTS {
		return
	}
	for key, ch := range m.chains {
		keep := 0
		for i, v := range ch {
			if v.ts <= wm {
				keep = i
			} else {
				break
			}
		}
		if keep > 0 {
			ch = append(ch[:0], ch[keep:]...)
		}
		if len(ch) == 1 && ch[0].val == 0 && ch[0].ts <= wm {
			delete(m.chains, key)
			continue
		}
		m.chains[key] = ch
	}
	m.floorTS = wm
}

// reset rebuilds the version view from a committed slot image (the model)
// after a crash-restart: every live key gets a single version at rts, and
// the floor rises to rts — pre-crash snapshots answer "snapshot too old"
// instead of reading chains the crash discarded.
func (m *mvccState) reset(model []uint64, rts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chains = make(map[uint64][]mvccVersion)
	m.slotKey = make(map[int]uint64)
	for slot := 0; slot*2 < len(model); slot++ {
		if key := model[slot*2]; key != 0 {
			m.chains[key] = []mvccVersion{{ts: rts, val: model[slot*2+1]}}
			m.slotKey[slot] = key
		}
	}
	if rts > m.maxTS {
		m.maxTS = rts
	}
	m.floorTS = rts
}

// versions returns the chain length of key (tests).
func (m *mvccState) versions(key uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chains[key])
}

// floor returns the current GC floor (tests, statusz).
func (m *mvccState) floor() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floorTS
}

// --- shard-facing MVCC and oracle-persistence surface ---

// MVCCReadAt answers GET@ts from the committed version chains.
func (s *Shard) MVCCReadAt(key, ts uint64) (val uint64, found, tooOld bool) {
	return s.mvcc.readAt(key, ts)
}

// MVCCLatest answers a plain GET from the newest committed version.
func (s *Shard) MVCCLatest(key uint64) (val uint64, found bool) {
	return s.mvcc.latest(key)
}

// MVCCLatestTS is the commit-window conflict probe.
func (s *Shard) MVCCLatestTS(key uint64) uint64 { return s.mvcc.latestTS(key) }

// MVCCSlotImage is the committed occupant of a store slot.
func (s *Shard) MVCCSlotImage(slot int) (key, val uint64) { return s.mvcc.slotImage(slot) }

// MVCCGC trims version chains to the watermark.
func (s *Shard) MVCCGC(wm uint64) { s.mvcc.gc(wm) }

// MVCCReset rebuilds chains from the committed model at rts (crash-restart).
func (s *Shard) MVCCReset(rts uint64) { s.mvcc.reset(s.model, rts) }

// MVCCVersions is the chain length of key (tests).
func (s *Shard) MVCCVersions(key uint64) int { return s.mvcc.versions(key) }

// MVCCFloor is the oldest readable snapshot (tests, statusz).
func (s *Shard) MVCCFloor() uint64 { return s.mvcc.floor() }

// mvccCommit folds a committed batch's logical mutations into the version
// chains. Runs in the applier goroutine at the point the batch is known
// durable, same as commitModel.
func (s *Shard) mvccCommit(b *Batch) {
	for i, key := range b.VerKeys {
		var val uint64
		if !b.VerDel[i] {
			val = b.VerVals[i]
		}
		s.mvcc.commitVer(key, val, b.VerDel[i], b.VerTS[i], s.SlotOf(key))
	}
}

// mvccLegacyCommit versions a batch admitted without explicit commit
// timestamps (direct Apply callers: store tests, crash harnesses). The
// whole batch is one atomic unit, so it commits at one synthetic ts just
// past everything already versioned.
func (s *Shard) mvccLegacyCommit(b *Batch) {
	m := s.mvcc
	m.mu.Lock()
	ts := m.maxTS + 1
	m.mu.Unlock()
	for i, key := range b.SetKeys {
		m.commitVer(key, b.SetVals[i], false, ts, s.SlotOf(key))
	}
	for _, key := range b.DelKeys {
		m.commitVer(key, 0, true, ts, s.SlotOf(key))
	}
}

// oracleWrite persists the batch's oracle reservation (the timestamp
// high-water mark plus slack) into PM beside the dedup table. The value is
// monotone, so it is deliberately NOT journaled: rolling it back could
// expose an already-handed-out timestamp to reuse after recovery, which is
// exactly the regression the reservation exists to prevent. A crash that
// rolls the batch back leaves the reservation advanced — recovery resumes
// past it, wasting at most oraSlack timestamps.
func (s *Shard) oracleWrite(b *Batch) {
	if b.OracleHWM == 0 || b.OracleHWM <= s.oraShadow {
		return
	}
	addr := s.oraFile.Mmap()
	hwm := b.OracleHWM
	s.env.Ctx.RunCPU("oracle-hwm", 1, func(t *cpusim.Thread) {
		t.WriteU64(addr, hwm)
		t.PersistRange(addr, 8)
	})
	s.oraShadow = hwm
}

// oraShadowReload rereads the durable oracle reservation after a restart.
func (s *Shard) oraShadowReload() {
	snap := s.env.Ctx.Space.SnapshotPersistent(s.oraFile.Mmap(), 8)
	s.oraShadow = binary.LittleEndian.Uint64(snap)
}

// RecoveredOracleHWM is the durable timestamp reservation — after Restart,
// the point past which a rebuilt oracle must resume.
func (s *Shard) RecoveredOracleHWM() uint64 { return s.oraShadow }

// mutCap bounds the logical mutations one epoch may carry: squashing packs
// many client writes onto few kernel slots, but the dedup journal (sized at
// shard build time) must still fit one advance per possibly-distinct
// client.
func mutCap(maxBatch int) int { return 4 * maxBatch }
