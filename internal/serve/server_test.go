package serve

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// startServer brings up a loopback server and returns its address and a
// shutdown func.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()
	return srv, addr.String()
}

// dial opens a client and returns a send-line/expect-reply helper.
func dial(t *testing.T, addr string) (*bufio.Reader, net.Conn) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.SetDeadline(time.Now().Add(30 * time.Second))
	return bufio.NewReader(c), c
}

func roundTrip(t *testing.T, c net.Conn, br *bufio.Reader, req string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c, "%s\n", req); err != nil {
		t.Fatalf("send %q: %v", req, err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reply to %q: %v", req, err)
	}
	return strings.TrimSpace(line)
}

// End-to-end over real TCP: sets, gets, dels, overwrite, durability on the
// response path, graceful drain, verification.
func TestServerEndToEnd(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 16,
		BatchWait: 200 * time.Microsecond, Workers: 1, Telemetry: tel,
	})
	br, c := dial(t, addr)
	defer c.Close()

	cases := []struct{ req, want string }{
		{"PING", "PONG"},
		{"SET 1 100", "OK"},
		{"SET 2 200", "OK"},
		{"GET 1", "VALUE 100"},
		{"GET 2", "VALUE 200"},
		{"GET 3", "NOTFOUND"},
		{"SET 1 101", "OK"}, // overwrite (second batch: same slot)
		{"GET 1", "VALUE 101"},
		{"DEL 2", "OK"},
		{"GET 2", "NOTFOUND"},
		{"set 7 70", "OK"}, // verbs are case-insensitive
		{"GET 7", "VALUE 70"},
	}
	for _, tc := range cases {
		if got := roundTrip(t, c, br, tc.req); got != tc.want {
			t.Errorf("%q -> %q, want %q", tc.req, got, tc.want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)

	var served int64
	for _, sh := range srv.Shards() {
		served += sh.Ops()
		if err := sh.Verify(); err != nil {
			t.Errorf("shard %d: %v", sh.ID(), err)
		}
	}
	if served != int64(len(cases)-1) { // PING is not a store op
		t.Errorf("shards served %d ops, want %d", served, len(cases)-1)
	}
	reg := tel.Registry()
	if reg.Histogram("serve.request_us", telemetry.LatencyBucketsUS).Count() != int64(len(cases)-1) {
		t.Errorf("request_us count = %d, want %d",
			reg.Histogram("serve.request_us", telemetry.LatencyBucketsUS).Count(), len(cases)-1)
	}
}

// Malformed requests get ERR replies without killing the connection or the
// server, and never reach a shard.
func TestServerProtocolErrors(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	defer srv.Shutdown(5 * time.Second)
	br, c := dial(t, addr)
	defer c.Close()

	for _, bad := range []string{
		"BOGUS 1", "SET 1", "SET 1 2 3", "GET", "SET x 1", "SET 1 x",
		"SET 0 5", "SET 1 0", "GET 0", "",
	} {
		if got := roundTrip(t, c, br, bad); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%q -> %q, want ERR...", bad, got)
		}
	}
	// The connection still works after errors.
	if got := roundTrip(t, c, br, "SET 5 50"); got != "OK" {
		t.Errorf("SET after errors -> %q", got)
	}
	if got := roundTrip(t, c, br, "GET 5"); got != "VALUE 50" {
		t.Errorf("GET after errors -> %q", got)
	}
}

// Two mutations of the same slot pipelined back-to-back chain into
// consecutive epochs (the batch is NOT sealed — other keys keep filling
// it) and resolve in arrival order.
func TestServerConflictSquashesIntoEpoch(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 64,
		BatchWait: 50 * time.Millisecond,
		Workers:   1, Telemetry: tel,
	})
	br, c := dial(t, addr)
	defer c.Close()

	// Pipeline without waiting: SET k, SET k, GET k. The second SET folds
	// onto the first's slot image inside ONE epoch; the GET resolves
	// against the staged image and rides along for durability.
	if _, err := fmt.Fprintf(c, "SET 11 1\nSET 11 2\nGET 11\n"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK", "OK", "VALUE 2"} {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Errorf("reply %q, want %q", got, want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	if sq := tel.Registry().Counter("serve.shard0.squashes").Value(); sq < 1 {
		t.Errorf("squashes = %d, want >= 1", sq)
	}
	if chains := tel.Registry().Counter("serve.shard0.conflict_chains").Value(); chains != 0 {
		t.Errorf("conflict_chains = %d, want 0 (conflict squashed, not chained)", chains)
	}
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
}

// With squashing disabled (the PR-8 compatibility baseline) a same-slot
// conflict must still seal the epoch and chain the second write into the
// next one.
func TestServerConflictChainsEpochsNoSquash(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 64,
		BatchWait: 50 * time.Millisecond,
		Workers:   1, Telemetry: tel, NoSquash: true,
	})
	br, c := dial(t, addr)
	defer c.Close()

	if _, err := fmt.Fprintf(c, "SET 11 1\nSET 11 2\nGET 11\n"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK", "OK", "VALUE 2"} {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Errorf("reply %q, want %q", got, want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	if chains := tel.Registry().Counter("serve.shard0.conflict_chains").Value(); chains < 1 {
		t.Errorf("conflict_chains = %d, want >= 1", chains)
	}
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
}

// Deterministic pipeline ordering: a long alternating SET/GET chain on ONE
// key, all pipelined, must observe every write in arrival order even
// though consecutive mutations land in consecutive epochs and the epochs
// overlap in the pipeline.
func TestServerPipelineOrdering(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 32,
		BatchWait: 5 * time.Millisecond, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()

	const n = 50
	var reqs strings.Builder
	var wants []string
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&reqs, "SET 9 %d\nGET 9\n", i*10)
		wants = append(wants, "OK", fmt.Sprintf("VALUE %d", i*10))
	}
	if _, err := fmt.Fprint(c, reqs.String()); err != nil {
		t.Fatal(err)
	}
	for i, want := range wants {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Fatalf("reply %d = %q, want %q", i, got, want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
}

// Hot-key cache: repeated GETs of one key are served from the eADR cache
// (cache_hits > 0) without losing read-your-writes — a SET invalidates
// the cached slot and later GETs see the new value.
func TestServerHotKeyCache(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 16,
		BatchWait: 200 * time.Microsecond, Workers: 1, HotKeys: 8, Telemetry: tel,
	})
	br, c := dial(t, addr)
	defer c.Close()

	if got := roundTrip(t, c, br, "SET 42 7"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	for i := 0; i < 20; i++ {
		if got := roundTrip(t, c, br, "GET 42"); got != "VALUE 7" {
			t.Fatalf("GET %d -> %q, want VALUE 7", i, got)
		}
	}
	// Overwrite, then read again: the cache must not serve the stale 7.
	if got := roundTrip(t, c, br, "SET 42 8"); got != "OK" {
		t.Fatalf("overwrite -> %q", got)
	}
	for i := 0; i < 5; i++ {
		if got := roundTrip(t, c, br, "GET 42"); got != "VALUE 8" {
			t.Fatalf("GET after overwrite -> %q, want VALUE 8", got)
		}
	}
	// A hot key that was never set: cached absence still answers NOTFOUND.
	for i := 0; i < 5; i++ {
		if got := roundTrip(t, c, br, "GET 43"); got != "NOTFOUND" {
			t.Fatalf("GET absent -> %q, want NOTFOUND", got)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	reg := tel.Registry()
	if hits := reg.Counter("serve.shard0.cache_hits").Value(); hits < 5 {
		t.Errorf("cache_hits = %d, want >= 5", hits)
	}
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
}

// Shutdown must drain: requests accepted before the drain get real
// replies, and pending partial batches flush.
func TestServerDrainOnShutdown(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 1024,
		BatchWait: 10 * time.Second, // never seals on its own
		Workers:   1,
	})
	br, c := dial(t, addr)
	defer c.Close()

	if _, err := fmt.Fprintf(c, "SET 1 10\nSET 2 20\n"); err != nil {
		t.Fatal(err)
	}
	// Give the requests time to reach the shard queues, then shut down
	// while the batches are still pending on their deadline.
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() { srv.Shutdown(10 * time.Second); close(done) }()

	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d during drain: %v", i, err)
		}
		if got := strings.TrimSpace(line); got != "OK" {
			t.Errorf("drain reply = %q, want OK", got)
		}
	}
	c.Close()
	<-done
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
}

// The load generator end-to-end: a small closed-loop run with mixed ops
// across shards, then drain and verify — the selftest path in miniature.
func TestServerUnderLoad(t *testing.T) {
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 256, MaxBatch: 64,
		BatchWait: 200 * time.Microsecond, Workers: 1, Telemetry: tel,
	})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Conns: 4, Ops: 800, Window: 8,
		GetFraction: 0.4, DelFraction: 0.1, KeySpace: 512, Seed: 1,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	srv.Shutdown(10 * time.Second)

	if res.Ops != 800 {
		t.Errorf("completed %d ops, want 800", res.Ops)
	}
	if res.Errors != 0 {
		t.Errorf("%d errored replies", res.Errors)
	}
	if res.Throughput <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("implausible latency stats: tput=%g p50=%v p99=%v", res.Throughput, res.P50, res.P99)
	}
	var served int64
	for _, sh := range srv.Shards() {
		served += sh.Ops()
		if sh.Ops() == 0 {
			t.Errorf("shard %d idle — keyspace not spanning shards", sh.ID())
		}
		if err := sh.Verify(); err != nil {
			t.Error(err)
		}
	}
	reg := tel.Registry()
	var cacheHits int64
	for i := range srv.Shards() {
		cacheHits += reg.Counter(fmt.Sprintf("serve.shard%d.cache_hits", i)).Value()
	}
	if served+cacheHits != res.Ops {
		t.Errorf("shards served %d + %d cache hits, clients saw %d", served, cacheHits, res.Ops)
	}
	if b := tel.Registry().Counter("serve.shard0.batches").Value(); b < 1 {
		t.Error("no batches recorded on shard 0")
	}
}

// SelfTest is the smoke-test entry: GPM across 2 shards with
// kill-and-recover must verify and report sane numbers.
func TestSelfTestKillAndRecover(t *testing.T) {
	rep, err := SelfTest(SelfTestOptions{
		Modes:          []workloads.Mode{workloads.GPM},
		ShardCounts:    []int{2},
		Ops:            600,
		Conns:          4,
		Sets:           256,
		MaxBatch:       64,
		BatchWait:      200 * time.Microsecond,
		Workers:        1,
		Seed:           3,
		KillAndRecover: true,
	})
	if err != nil {
		t.Fatalf("SelfTest: %v", err)
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("%d entries, want 1", len(rep.Entries))
	}
	e := rep.Entries[0]
	if !e.Verified || !e.Recovered {
		t.Errorf("entry not verified/recovered: %+v", e)
	}
	if e.Ops != 600 || e.Errors != 0 {
		t.Errorf("ops=%d errors=%d, want 600/0", e.Ops, e.Errors)
	}
	if e.RecoverUS <= 0 {
		t.Errorf("RecoverUS = %g, want > 0", e.RecoverUS)
	}
	if e.Batches < 1 || e.SimBatchUS <= 0 {
		t.Errorf("batches=%d sim_batch_us=%g", e.Batches, e.SimBatchUS)
	}
	if e.MeanFill <= 0 {
		t.Errorf("MeanFill = %g, want > 0", e.MeanFill)
	}
	// Every between-stage crash point must have been exercised.
	seen := make(map[string]bool)
	for _, p := range e.CrashPoints {
		seen[p] = true
	}
	for _, p := range CrashPoints() {
		if !seen[p.String()] {
			t.Errorf("crash point %s not exercised (got %v)", p, e.CrashPoints)
		}
	}
}

// The zipfian selftest: hot keys drive conflict chains and cache hits, and
// kill-and-recover still verifies under skew.
func TestSelfTestZipf(t *testing.T) {
	rep, err := SelfTest(SelfTestOptions{
		Modes:          []workloads.Mode{workloads.GPM},
		ShardCounts:    []int{2},
		Ops:            600,
		Conns:          4,
		Sets:           256,
		MaxBatch:       64,
		BatchWait:      200 * time.Microsecond,
		Workers:        1,
		Seed:           3,
		Dist:           DistZipf,
		Theta:          0.99,
		KillAndRecover: true,
	})
	if err != nil {
		t.Fatalf("SelfTest: %v", err)
	}
	if rep.Dist != DistZipf || rep.Theta != 0.99 {
		t.Errorf("report dist/theta = %s/%g, want zipf/0.99", rep.Dist, rep.Theta)
	}
	e := rep.Entries[0]
	if !e.Verified || !e.Recovered {
		t.Errorf("entry not verified/recovered: %+v", e)
	}
	if e.CacheHits < 1 {
		t.Errorf("cache_hits = %d, want >= 1 under zipfian skew", e.CacheHits)
	}
}
