package serve

import "sync"

// oraSlack is the reservation margin the oracle persists ahead of its
// counter. Every mutation-bearing epoch re-persists the reservation with
// its group-commit, so recovery only over-advances if more than oraSlack
// timestamps were handed out after the last durable write — impossible
// while allocations per epoch are bounded by the batch and queue depths
// (both orders of magnitude below the slack).
const oraSlack = 1 << 16

// tsOracle is the server-wide monotonic timestamp authority for MVCC
// snapshot isolation. Every commit unit (a plain mutation, or all the
// writes of one transaction COMMIT) draws one timestamp at admission;
// snapshot timestamps are the current stable floor: the largest ts T such
// that every unit with ts <= T has either group-committed or rolled back.
// Reads at a snapshot therefore never see a half-durable epoch, and never
// block on one either.
//
// Durability piggybacks on the shards: each epoch carries the oracle's
// reservation (counter + oraSlack) into persistent memory next to the
// dedup high-water mark, inside the same commit window. The value is
// monotone, so unlike the dedup table it needs no undo journal — a torn
// or rolled-back write leaves an older reservation, which recovery covers
// with the slack. A restarted oracle resumes past every timestamp it ever
// exposed, so versions and snapshots never regress across crash-restarts.
type tsOracle struct {
	mu   sync.Mutex
	next uint64 // next ts to allocate (counter; exposed ts are < next)
	// outstanding maps an allocated-but-uncommitted ts to the number of
	// shard epochs that still have to commit (or roll back) it. Multi-shard
	// transaction commits are the only units with refcount > 1.
	outstanding map[uint64]int
}

// newOracle resumes from a persisted reservation (0 = fresh store).
func newOracle(recovered uint64) *tsOracle {
	return &tsOracle{next: recovered + 1, outstanding: make(map[uint64]int)}
}

// alloc draws one commit timestamp held open by refs epoch commits.
func (o *tsOracle) alloc(refs int) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	ts := o.next
	o.next++
	o.outstanding[ts] = refs
	return ts
}

// release retires one epoch's hold on ts; at zero holds the unit is
// stable (committed or rolled back — either way no snapshot can be torn
// by it) and the floor may advance past it.
func (o *tsOracle) release(ts uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n, ok := o.outstanding[ts]; ok {
		if n <= 1 {
			delete(o.outstanding, ts)
		} else {
			o.outstanding[ts] = n - 1
		}
	}
}

// snapshot returns the current stable floor: min(outstanding) - 1, or the
// full allocated prefix when nothing is in flight. Monotone over time —
// new allocations are always above the current minimum, and removing the
// minimum only raises it.
func (o *tsOracle) snapshot() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	min := o.next
	for ts := range o.outstanding {
		if ts < min {
			min = ts
		}
	}
	return min - 1
}

// reserve returns the durable reservation to persist with an epoch:
// everything allocated so far plus the slack that covers allocations
// between this persist and a crash.
func (o *tsOracle) reserve() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.next + oraSlack
}

// current returns the highest allocated ts (0 = none yet): the rebuild
// timestamp for version chains reconstructed from a recovered mirror.
func (o *tsOracle) current() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.next - 1
}

// advanceTo bumps the counter to at least recovered+1 — a no-op while the
// oracle object outlives a shard crash (its counter is already ahead),
// but the honest resume path when an oracle is rebuilt from PM alone.
func (o *tsOracle) advanceTo(recovered uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if recovered >= o.next {
		o.next = recovered + 1
	}
}

// snapRegistry tracks live snapshot timestamps (open transactions) so the
// version-chain GC never reclaims a version a live snapshot can read.
type snapRegistry struct {
	mu sync.Mutex
	m  map[uint64]int // snapshot ts -> open txn count
}

func newSnapRegistry() *snapRegistry {
	return &snapRegistry{m: make(map[uint64]int)}
}

func (sr *snapRegistry) acquire(ts uint64) {
	sr.mu.Lock()
	sr.m[ts]++
	sr.mu.Unlock()
}

func (sr *snapRegistry) release(ts uint64) {
	sr.mu.Lock()
	if n, ok := sr.m[ts]; ok {
		if n <= 1 {
			delete(sr.m, ts)
		} else {
			sr.m[ts] = n - 1
		}
	}
	sr.mu.Unlock()
}

// min returns the oldest live snapshot and whether any exists.
func (sr *snapRegistry) min() (uint64, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var m uint64
	ok := false
	for ts := range sr.m {
		if !ok || ts < m {
			m, ok = ts, true
		}
	}
	return m, ok
}

// active is the number of open snapshots (statusz).
func (sr *snapRegistry) active() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := 0
	for _, c := range sr.m {
		n += c
	}
	return n
}
