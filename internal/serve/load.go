package serve

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gpm-sim/gpm/internal/sim"
)

// LoadConfig configures the closed-loop load generator: Conns connections,
// each keeping Window requests pipelined, sending a seeded deterministic
// GET/SET/DEL mix over [1, KeySpace].
type LoadConfig struct {
	Addr        string
	Conns       int
	Ops         int64 // total across connections
	Window      int   // pipelined outstanding requests per connection
	GetFraction float64
	DelFraction float64
	KeySpace    uint64
	Seed        uint64
	Timeout     time.Duration // per-connection dial/IO deadline (0 = 30s)
}

// Normalize fills defaults and validates.
func (c *LoadConfig) Normalize() error {
	if c.Conns == 0 {
		c.Conns = 8
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.KeySpace == 0 {
		c.KeySpace = 4096
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Addr == "" || c.Conns < 1 || c.Ops < 1 || c.Window < 1 ||
		c.GetFraction < 0 || c.DelFraction < 0 || c.GetFraction+c.DelFraction > 1 {
		return fmt.Errorf("serve: invalid load config (addr=%q conns=%d ops=%d window=%d get=%g del=%g)",
			c.Addr, c.Conns, c.Ops, c.Window, c.GetFraction, c.DelFraction)
	}
	return nil
}

// LoadResult summarizes one load run. Latencies are wall-clock
// request→reply times measured at the client.
type LoadResult struct {
	Ops        int64         `json:"ops"`
	Errors     int64         `json:"errors"` // ERR replies + transport failures
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Elapsed    time.Duration `json:"-"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Throughput float64       `json:"ops_per_sec"`
	P50        time.Duration `json:"-"`
	P95        time.Duration `json:"-"`
	P99        time.Duration `json:"-"`
	P50US      float64       `json:"p50_us"`
	P95US      float64       `json:"p95_us"`
	P99US      float64       `json:"p99_us"`
}

// RunLoad drives the server at cfg.Addr and reports client-side metrics.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	type connStats struct {
		lats         []time.Duration
		errs         int64
		hits, misses int64
		err          error
	}
	stats := make([]connStats, cfg.Conns)
	per := cfg.Ops / int64(cfg.Conns)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Conns; ci++ {
		ops := per
		if ci == 0 {
			ops += cfg.Ops % int64(cfg.Conns) // remainder on the first conn
		}
		wg.Add(1)
		go func(ci int, ops int64) {
			defer wg.Done()
			st := &stats[ci]
			st.err = driveConn(cfg, ci, ops, st.lats[:0], func(lats []time.Duration, errs, hits, misses int64) {
				st.lats, st.errs, st.hits, st.misses = lats, errs, hits, misses
			})
		}(ci, ops)
	}
	wg.Wait()

	out := &LoadResult{Elapsed: time.Since(start)}
	var all []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return nil, fmt.Errorf("serve: load conn %d: %w", i, stats[i].err)
		}
		out.Ops += int64(len(stats[i].lats))
		out.Errors += stats[i].errs
		out.Hits += stats[i].hits
		out.Misses += stats[i].misses
		all = append(all, stats[i].lats...)
	}
	out.ElapsedMS = float64(out.Elapsed) / float64(time.Millisecond)
	if out.Elapsed > 0 {
		out.Throughput = float64(out.Ops) / out.Elapsed.Seconds()
	}
	out.P50 = percentile(all, 0.50)
	out.P95 = percentile(all, 0.95)
	out.P99 = percentile(all, 0.99)
	out.P50US = float64(out.P50) / float64(time.Microsecond)
	out.P95US = float64(out.P95) / float64(time.Microsecond)
	out.P99US = float64(out.P99) / float64(time.Microsecond)
	return out, nil
}

// driveConn runs one connection's share: a writer keeps up to Window
// requests outstanding; the reader matches in-order replies and records
// latencies. commit publishes the results exactly once before return.
func driveConn(cfg LoadConfig, ci int, ops int64, lats []time.Duration,
	commit func(lats []time.Duration, errs, hits, misses int64)) error {
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(cfg.Timeout))
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined small writes; avoid Nagle stalls
	}

	rng := sim.NewRNG(cfg.Seed + uint64(ci)*0x9e3779b9)
	sendTimes := make(chan time.Time, cfg.Window)
	var errs, hits, misses int64

	var readErr error
	readerGone := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		defer close(readerGone)
		br := bufio.NewReader(conn)
		for i := int64(0); i < ops; i++ {
			line, err := br.ReadString('\n')
			if err != nil {
				readErr = err
				return
			}
			lats = append(lats, time.Since(<-sendTimes))
			switch {
			case strings.HasPrefix(line, "VALUE"):
				hits++
			case strings.HasPrefix(line, "NOTFOUND"):
				misses++
			case strings.HasPrefix(line, "ERR"):
				errs++
			}
		}
	}()

	var writeErr error
	bw := bufio.NewWriter(conn)
	for i := int64(0); i < ops; i++ {
		key := 1 + rng.Uint64()%cfg.KeySpace
		roll := rng.Float64()
		var line string
		switch {
		case roll < cfg.GetFraction:
			line = fmt.Sprintf("GET %d\n", key)
		case roll < cfg.GetFraction+cfg.DelFraction:
			line = fmt.Sprintf("DEL %d\n", key)
		default:
			line = fmt.Sprintf("SET %d %d\n", key, key*2654435761+13)
		}
		// Blocks when Window requests are in flight; a dead reader releases
		// the writer instead of deadlocking it.
		select {
		case sendTimes <- time.Now():
		case <-readerGone:
			writeErr = fmt.Errorf("reader stopped")
		}
		if writeErr != nil {
			break
		}
		if _, err := bw.WriteString(line); err != nil {
			writeErr = err
			break
		}
		if len(sendTimes) == cap(sendTimes) || i == ops-1 {
			if err := bw.Flush(); err != nil {
				writeErr = err
				break
			}
		}
	}
	bw.Flush()
	rd.Wait()
	commit(lats, errs, hits, misses)
	if writeErr != nil {
		return writeErr
	}
	return readErr
}

// percentile returns the p-th percentile (0..1) of ds, 0 when empty.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
