package serve

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpm-sim/gpm/internal/serve/client"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Key distributions the load generator can draw from.
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
)

// LoadConfig configures the closed-loop load generator: Conns connections,
// each keeping Window requests pipelined, sending a seeded deterministic
// GET/SET/DEL mix over [1, KeySpace] drawn uniformly or zipfian.
type LoadConfig struct {
	Addr        string
	Conns       int
	Ops         int64 // total across connections
	Window      int   // pipelined outstanding requests per connection
	GetFraction float64
	DelFraction float64
	KeySpace    uint64
	Dist        string  // DistUniform (default) or DistZipf
	Theta       float64 // zipf skew in (0, 1); 0 defaults to 0.99 (YCSB hot)
	Seed        uint64
	Timeout     time.Duration // per-connection dial/IO deadline (0 = 30s)

	// Retry switches each connection to the exactly-once client: every
	// request carries an "@<cid>.<seq>" identity, replies are matched by ID
	// rather than stream position, and transport failures (or server RETRY
	// verdicts after a crash-restart) resend the request — reconnecting
	// with capped exponential backoff plus jitter — until it resolves or
	// MaxRetries attempts are spent (the op is then counted as given up,
	// not failed). Off, connections run the legacy positional pipeline.
	Retry        bool
	MaxRetries   int           // resend attempts per op and per reconnect (0 = 8)
	RetryBackoff time.Duration // backoff base; doubles per attempt, capped (0 = 2ms)

	// Dial overrides how connections reach the server (chaos campaigns
	// dial in-memory pipes or fault-injecting wrappers); nil dials
	// cfg.Addr over TCP.
	Dial func() (net.Conn, error)

	// Progress/OnProgress enable live status reporting: every Progress
	// interval the generator calls OnProgress with a snapshot whose rate
	// and p99 cover just that interval (a rolling window, not cumulative).
	// Both must be set for reporting to happen.
	Progress   time.Duration
	OnProgress func(LoadProgress)
}

// LoadProgress is one live status snapshot from a running load generation.
type LoadProgress struct {
	Elapsed    time.Duration // since RunLoad started
	Done       int64         // replies received so far (cumulative)
	Total      int64         // cfg.Ops
	Inflight   int64         // requests sent but not yet answered
	OpsPerSec  float64       // over the last interval only
	P99US      float64       // p99 latency over the last interval, microseconds
	Errors     int64         // ERR replies so far (cumulative)
	Reconnects int64         // transport reconnects so far (cumulative)
	Retries    int64         // resends so far (cumulative; retry client only)
}

// Normalize fills defaults and validates.
func (c *LoadConfig) Normalize() error {
	if c.Conns == 0 {
		c.Conns = 8
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.KeySpace == 0 {
		c.KeySpace = 4096
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Dist == "" {
		c.Dist = DistUniform
	}
	if c.Dist == DistZipf && c.Theta == 0 {
		c.Theta = 0.99
	}
	if (c.Addr == "" && c.Dial == nil) || c.Conns < 1 || c.Ops < 1 || c.Window < 1 ||
		c.GetFraction < 0 || c.DelFraction < 0 || c.GetFraction+c.DelFraction > 1 ||
		c.MaxRetries < 1 || c.RetryBackoff < 0 {
		return fmt.Errorf("serve: invalid load config (addr=%q conns=%d ops=%d window=%d get=%g del=%g retries=%d)",
			c.Addr, c.Conns, c.Ops, c.Window, c.GetFraction, c.DelFraction, c.MaxRetries)
	}
	switch c.Dist {
	case DistUniform:
	case DistZipf:
		if c.Theta <= 0 || c.Theta >= 1 {
			return fmt.Errorf("serve: zipf theta must be in (0, 1), got %g", c.Theta)
		}
	default:
		return fmt.Errorf("serve: unknown key distribution %q (valid: %s, %s)", c.Dist, DistUniform, DistZipf)
	}
	return nil
}

// LoadResult summarizes one load run. Latencies are wall-clock
// request→reply times measured at the client. The key-distribution fields
// echo the generator config so the JSON is self-describing.
type LoadResult struct {
	Ops        int64         `json:"ops"`
	Errors     int64         `json:"errors"` // ERR replies + transport failures
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Reconnects int64         `json:"reconnects"`      // transport reconnects (retry client)
	Retries    int64         `json:"retries"`         // resends of already-sent requests
	GaveUp     int64         `json:"gave_up"`         // ops abandoned after MaxRetries
	PerConn    []ConnResult  `json:"conns,omitempty"` // per-worker breakdown
	Dist       string        `json:"dist"`
	Theta      float64       `json:"theta,omitempty"` // zipf only
	KeySpace   uint64        `json:"keyspace"`
	Seed       uint64        `json:"seed"`
	Elapsed    time.Duration `json:"-"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Throughput float64       `json:"ops_per_sec"`
	P50        time.Duration `json:"-"`
	P95        time.Duration `json:"-"`
	P99        time.Duration `json:"-"`
	P50US      float64       `json:"p50_us"`
	P95US      float64       `json:"p95_us"`
	P99US      float64       `json:"p99_us"`
}

// ConnResult is one load worker's share of the run — per-worker errors,
// reconnects, and retry outcomes stay visible even when the aggregate
// looks healthy.
type ConnResult struct {
	Conn       int    `json:"conn"`
	Ops        int64  `json:"ops"` // replies received (excludes gave-up)
	Errors     int64  `json:"errors"`
	Reconnects int64  `json:"reconnects"`
	Retries    int64  `json:"retries"`
	GaveUp     int64  `json:"gave_up"`
	Failure    string `json:"failure,omitempty"` // fatal transport error, if any
}

// loadTracker aggregates live counters across connections for progress
// reporting: sends/replies are atomics touched once per request; interval
// latencies collect under a mutex and are swapped out at each report.
type loadTracker struct {
	sends      atomic.Int64
	replies    atomic.Int64
	errs       atomic.Int64
	reconnects atomic.Int64
	retries    atomic.Int64
	mu         sync.Mutex
	lats       []time.Duration
}

// The nil-safe increments below let drivers count unconditionally whether
// or not progress reporting (and thus the tracker) is enabled.

func (t *loadTracker) addSend() {
	if t != nil {
		t.sends.Add(1)
	}
}

func (t *loadTracker) addErr() {
	if t != nil {
		t.errs.Add(1)
	}
}

func (t *loadTracker) addReconnect() {
	if t != nil {
		t.reconnects.Add(1)
	}
}

func (t *loadTracker) addRetry() {
	if t != nil {
		t.retries.Add(1)
	}
}

func (t *loadTracker) record(d time.Duration) {
	if t == nil {
		return
	}
	t.replies.Add(1)
	t.mu.Lock()
	t.lats = append(t.lats, d)
	t.mu.Unlock()
}

// swap returns the latencies recorded since the previous swap.
func (t *loadTracker) swap() []time.Duration {
	t.mu.Lock()
	out := t.lats
	t.lats = nil
	t.mu.Unlock()
	return out
}

// reportLoop emits one LoadProgress per interval until stop closes.
func (t *loadTracker) reportLoop(cfg LoadConfig, start time.Time, stop <-chan struct{}) {
	tick := time.NewTicker(cfg.Progress)
	defer tick.Stop()
	var lastDone int64
	lastAt := start
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			done := t.replies.Load()
			span := now.Sub(lastAt)
			var rate float64
			if span > 0 {
				rate = float64(done-lastDone) / span.Seconds()
			}
			cfg.OnProgress(LoadProgress{
				Elapsed:    now.Sub(start),
				Done:       done,
				Total:      cfg.Ops,
				Inflight:   t.sends.Load() - done,
				OpsPerSec:  rate,
				P99US:      float64(percentile(t.swap(), 0.99)) / float64(time.Microsecond),
				Errors:     t.errs.Load(),
				Reconnects: t.reconnects.Load(),
				Retries:    t.retries.Load(),
			})
			lastDone, lastAt = done, now
		}
	}
}

// connStats is one worker's raw tallies, published once when it finishes.
type connStats struct {
	lats         []time.Duration
	errs         int64
	hits, misses int64
	reconnects   int64
	retries      int64
	gaveUp       int64
	err          error
}

// RunLoad drives the server at cfg.Addr and reports client-side metrics.
// One connection failing does not void the run: its fatal error is
// recorded in the per-connection breakdown and the first such error is
// returned ALONGSIDE the aggregated result, so callers that want the
// partial numbers can still read them.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	stats := make([]connStats, cfg.Conns)
	per := cfg.Ops / int64(cfg.Conns)
	start := time.Now()
	var prog *loadTracker
	if cfg.Progress > 0 && cfg.OnProgress != nil {
		prog = &loadTracker{}
		progDone := make(chan struct{})
		defer close(progDone)
		go prog.reportLoop(cfg, start, progDone)
	}
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Conns; ci++ {
		ops := per
		if ci == 0 {
			ops += cfg.Ops % int64(cfg.Conns) // remainder on the first conn
		}
		wg.Add(1)
		go func(ci int, ops int64) {
			defer wg.Done()
			stats[ci].err = driveConn(cfg, ci, ops, prog, &stats[ci])
		}(ci, ops)
	}
	wg.Wait()

	out := &LoadResult{
		Elapsed:  time.Since(start),
		Dist:     cfg.Dist,
		KeySpace: cfg.KeySpace,
		Seed:     cfg.Seed,
	}
	if cfg.Dist == DistZipf {
		out.Theta = cfg.Theta
	}
	var all []time.Duration
	var firstErr error
	for i := range stats {
		st := &stats[i]
		cr := ConnResult{
			Conn: i, Ops: int64(len(st.lats)), Errors: st.errs,
			Reconnects: st.reconnects, Retries: st.retries, GaveUp: st.gaveUp,
		}
		if st.err != nil {
			cr.Failure = st.err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: load conn %d: %w", i, st.err)
			}
		}
		out.PerConn = append(out.PerConn, cr)
		out.Ops += cr.Ops
		out.Errors += st.errs
		out.Hits += st.hits
		out.Misses += st.misses
		out.Reconnects += st.reconnects
		out.Retries += st.retries
		out.GaveUp += st.gaveUp
		all = append(all, st.lats...)
	}
	out.ElapsedMS = float64(out.Elapsed) / float64(time.Millisecond)
	if out.Elapsed > 0 {
		out.Throughput = float64(out.Ops) / out.Elapsed.Seconds()
	}
	out.P50 = percentile(all, 0.50)
	out.P95 = percentile(all, 0.95)
	out.P99 = percentile(all, 0.99)
	out.P50US = float64(out.P50) / float64(time.Microsecond)
	out.P95US = float64(out.P95) / float64(time.Microsecond)
	out.P99US = float64(out.P99) / float64(time.Microsecond)
	return out, firstErr
}

// loadClientConfig maps one load worker onto a client-package Config:
// plain workers run the positional pipeline, Retry workers the reliable
// exactly-once client (CID = worker index + 1, matching the legacy
// generator's identity scheme byte for byte).
func loadClientConfig(cfg LoadConfig, ci int, prog *loadTracker) client.Config {
	return client.Config{
		Addr:         cfg.Addr,
		Dial:         cfg.Dial,
		Timeout:      cfg.Timeout,
		Reliable:     cfg.Retry,
		CID:          uint64(ci) + 1,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Seed:         cfg.Seed,
		OnRetry:      prog.addRetry,
		OnReconnect:  prog.addReconnect,
	}
}

// driveConn runs one worker's share of the load through the client
// package: keep up to Window futures pipelined, wait on the oldest,
// tally its reply. Plain workers match replies positionally; Retry
// workers run the reliable client, whose transport retries/reconnects
// and RETRY resends happen inside Wait. A reliable op that spends its
// retry budget resolves ErrGaveUp and is tallied as given up, not done.
func driveConn(cfg LoadConfig, ci int, ops int64, prog *loadTracker, st *connStats) error {
	cl, err := client.Dial(loadClientConfig(cfg, ci, prog))
	if err != nil {
		return err
	}
	defer func() {
		cs := cl.Stats()
		st.reconnects, st.retries, st.gaveUp = cs.Reconnects, cs.Retries, cs.GaveUp
		cl.Close()
	}()

	rng := sim.NewRNG(cfg.Seed + uint64(ci)*0x9e3779b9)
	nextKey := newKeyGen(cfg, rng)

	window := make([]*client.Future, 0, cfg.Window)
	var sent int64
	for sent < ops || len(window) > 0 {
		// Top up the pipeline with fresh requests.
		for sent < ops && len(window) < cfg.Window {
			key := nextKey()
			roll := rng.Float64()
			var f *client.Future
			var err error
			switch {
			case roll < cfg.GetFraction:
				f, err = cl.Get(key)
			case roll < cfg.GetFraction+cfg.DelFraction:
				f, err = cl.Del(key)
			default:
				f, err = cl.Set(key, key*2654435761+13)
			}
			if err != nil {
				return err
			}
			sent++
			prog.addSend()
			window = append(window, f)
		}
		f := window[0]
		window = window[1:]
		body, err := cl.Wait(f)
		if err != nil {
			if errors.Is(err, client.ErrGaveUp) {
				continue // outcome unknown; the dedup window absorbs a later retry
			}
			return err
		}
		lat := f.RTT()
		st.lats = append(st.lats, lat)
		prog.record(lat)
		switch {
		case strings.HasPrefix(body, "VALUE"):
			st.hits++
		case strings.HasPrefix(body, "NOTFOUND"):
			st.misses++
		case strings.HasPrefix(body, "ERR"):
			st.errs++
			prog.addErr()
		}
	}
	return nil
}


// newKeyGen builds the per-connection key stream for a normalized config:
// uniform over [1, KeySpace], or scrambled zipfian for hot-key workloads.
func newKeyGen(cfg LoadConfig, rng *sim.RNG) func() uint64 {
	if cfg.Dist == DistZipf {
		z := newZipfGen(cfg.KeySpace, cfg.Theta)
		return func() uint64 { return z.next(rng) }
	}
	return func() uint64 { return 1 + rng.Uint64()%cfg.KeySpace }
}

// zipfGen samples ranks with P(rank) ∝ 1/rank^theta over [1, n] using the
// closed-form YCSB/Gray generator, then scrambles rank -> key with a fixed
// mixer so the hot set spreads across the key-mod-shards partition map
// instead of piling onto shard 1. Sampling is O(1) per draw after an O(n)
// zeta precomputation; the stream is a pure function of the caller's RNG,
// so seeded runs are reproducible.
type zipfGen struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan        float64
	eta          float64
	halfPowTheta float64
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	zetan := zetaSum(n, theta)
	return &zipfGen{
		n:            n,
		theta:        theta,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaSum(2, theta)/zetan),
		halfPowTheta: math.Pow(0.5, theta),
	}
}

// zetaSum is the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zetaSum(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

// next draws one key in [1, n]; rank 0 is the hottest before scrambling.
func (z *zipfGen) next(rng *sim.RNG) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+z.halfPowTheta:
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	return 1 + mix64(rank)%z.n
}

// mix64 is the splitmix64 finalizer: a fixed bijective scramble, so equal
// ranks always map to the same key (the hot set is stable across draws).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// percentile returns the p-th percentile (0..1) of ds, 0 when empty.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
