package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// The zipfian generator must be seeded-deterministic, in-range, properly
// skewed (the top rank dominates), and scrambled so the hot set does not
// pile onto one key-mod-N shard.
func TestZipfGenerator(t *testing.T) {
	const n, draws = 4096, 200_000
	z := newZipfGen(n, 0.99)
	rng := sim.NewRNG(42)
	counts := make(map[uint64]int)
	var shardHits [4]int
	for i := 0; i < draws; i++ {
		k := z.next(rng)
		if k < 1 || k > n {
			t.Fatalf("draw %d out of range: %d", i, k)
		}
		counts[k]++
		shardHits[k%4]++
	}

	// Skew: the single hottest key takes a large share (theta=0.99 over
	// n=4096 gives the top rank ~11% of the mass), and the distribution is
	// far from uniform.
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / draws; frac < 0.05 {
		t.Errorf("hottest key has %.1f%% of draws, want >= 5%% (not zipfian?)", frac*100)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys drawn, want a long tail", len(counts))
	}

	// Scramble: hot mass spreads across key-mod-4 partitions; no shard may
	// hold more than ~70% of the draws.
	for s, hits := range shardHits {
		if float64(hits)/draws > 0.7 {
			t.Errorf("shard %d got %.1f%% of zipf draws — scramble not spreading", s, 100*float64(hits)/draws)
		}
	}

	// Determinism: same seed, same stream.
	z2 := newZipfGen(n, 0.99)
	rng2 := sim.NewRNG(42)
	z3 := newZipfGen(n, 0.99)
	rng3 := sim.NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a, b := z2.next(rng2), z3.next(rng3); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

// Lower theta must flatten the distribution.
func TestZipfThetaControlsSkew(t *testing.T) {
	const n, draws = 1024, 100_000
	top := func(theta float64) float64 {
		z := newZipfGen(n, theta)
		rng := sim.NewRNG(7)
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			counts[z.next(rng)]++
		}
		var max int
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / draws
	}
	hot, mild := top(0.99), top(0.5)
	if hot <= mild {
		t.Errorf("top-key share theta=0.99 (%.3f) should exceed theta=0.5 (%.3f)", hot, mild)
	}
}

// LoadConfig validation: zipf defaults and rejections.
func TestLoadConfigDistValidation(t *testing.T) {
	c := LoadConfig{Addr: "x", Ops: 1, Dist: DistZipf}
	if err := c.Normalize(); err != nil {
		t.Fatalf("zipf defaults: %v", err)
	}
	if c.Theta != 0.99 {
		t.Errorf("default theta = %g, want 0.99", c.Theta)
	}
	bad := LoadConfig{Addr: "x", Ops: 1, Dist: "pareto"}
	if err := bad.Normalize(); err == nil {
		t.Error("unknown dist should be rejected")
	}
	badTheta := LoadConfig{Addr: "x", Ops: 1, Dist: DistZipf, Theta: 1.5}
	if err := badTheta.Normalize(); err == nil {
		t.Error("theta >= 1 should be rejected")
	}
}

// Progress snapshots arrive on the configured cadence with sane counters:
// Done never regresses, never exceeds Total, and inflight is non-negative.
// The final LoadResult must be unaffected by progress tracking.
func TestRunLoadProgress(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 256, MaxBatch: 32,
		BatchWait: 200 * time.Microsecond, Workers: 1, Telemetry: telemetry.New(),
	})
	defer srv.Shutdown(5 * time.Second)

	var mu sync.Mutex
	var snaps []LoadProgress
	res, err := RunLoad(LoadConfig{
		Addr: addr, Conns: 4, Ops: 4000, Window: 8, GetFraction: 0.5,
		Seed: 11, Progress: 5 * time.Millisecond,
		OnProgress: func(p LoadProgress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Ops != 4000 || res.Errors != 0 {
		t.Fatalf("load: %d ops, %d errors", res.Ops, res.Errors)
	}
	mu.Lock()
	defer mu.Unlock()
	// The run may finish inside the first interval on a fast machine, so a
	// zero-snapshot outcome is only reportable, not fatal.
	if len(snaps) == 0 {
		t.Skip("load finished before the first progress interval")
	}
	var prev int64
	for i, p := range snaps {
		if p.Done < prev || p.Done > p.Total || p.Total != 4000 {
			t.Errorf("snapshot %d: done %d (prev %d) of total %d", i, p.Done, prev, p.Total)
		}
		if p.Inflight < 0 {
			t.Errorf("snapshot %d: negative inflight %d", i, p.Inflight)
		}
		if p.Elapsed <= 0 {
			t.Errorf("snapshot %d: elapsed %s", i, p.Elapsed)
		}
		prev = p.Done
	}
}
