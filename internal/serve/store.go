// Package serve is gpmserve's batched network front-end over the gpKVS
// store: a TCP server that accumulates client GET/SET/DEL requests into
// admission-controlled batches and dispatches each batch as the same GPU
// kernel transactions the gpKVS workload runs (SET/DELETE with HCL undo
// logging under GPM, CAP-fs/CAP-mm post-kernel persistence as baselines).
// Replies are sent only after the batch's persistence path completes, so a
// positive response implies durability of the mutation it acknowledges.
//
// The keyspace partitions across -shards independent simulated nodes
// (shard = key mod shards), each owned by one worker goroutine; batches on
// different shards execute concurrently while each shard stays serial, so
// the simulated results per shard are deterministic given the batch
// sequence.
package serve

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	gpm "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Batch is one admitted transaction of client operations. The batcher
// guarantees at most one mutation (SET or DEL) per store slot per batch —
// the same precondition the gpKVS workload generator enforces — so kernel
// thread scheduling cannot change the result. GETs are serviced from the
// post-mutation mirror, matching arrival order (a GET admitted after a SET
// of the same key observes the new value; a mutation arriving after a GET
// of its slot seals the batch first).
type Batch struct {
	SetKeys, SetVals []uint64
	DelKeys          []uint64
	GetKeys          []uint64

	// SetIDs/DelIDs carry the client request ID of each mutation (zero ID =
	// unidentified legacy request), parallel to SetKeys/DelKeys. They feed
	// the per-ID apply tally the chaos invariant checker reads.
	SetIDs, DelIDs []ReqID

	// DedupCID/DedupSeq are the batch's dedup advances: for every client
	// with identified requests riding this batch, the highest sequence
	// number aboard. They are persisted into the PM dedup table inside the
	// batch's transaction window, so a client's committed high-water mark
	// survives exactly the crashes its acked mutations survive.
	DedupCID, DedupSeq []uint64

	// VerKeys/VerVals/VerDel/VerTS/VerIDs carry EVERY logical mutation the
	// epoch squashed onto its kernel slots, each with its MVCC commit
	// timestamp: the version-chain commit and the per-ID apply tally. When
	// VerKeys is empty the batch is a legacy direct-Apply batch and
	// SetKeys/DelKeys are both the kernel ops and the logical mutations.
	// VerIDs carries a request ID only on the first write of a multi-write
	// transaction commit (one tally per commit unit).
	VerKeys, VerVals []uint64
	VerDel           []bool
	VerTS            []uint64
	VerIDs           []ReqID

	// OracleHWM, when nonzero, is the timestamp-oracle reservation to
	// persist with this batch's transaction (monotone, never journaled).
	OracleHWM uint64

	// LogicalOps, when nonzero, is the client-operation count this batch
	// services. Write-squashing folds many client writes onto few kernel
	// slots and precomputed snapshot reads ride epochs without a kernel op
	// at all, so the kernel op count (Ops) undercounts service; the shard's
	// Ops() tally uses this when set.
	LogicalOps int
}

// Mutations is the number of slot-writing operations in the batch.
func (b *Batch) Mutations() int { return len(b.SetKeys) + len(b.DelKeys) }

// Ops is the total operation count.
func (b *Batch) Ops() int { return b.Mutations() + len(b.GetKeys) }

// BatchResult reports one applied batch.
type BatchResult struct {
	// GetVals holds one entry per GetKeys element: the value, or 0 when the
	// key was absent.
	GetVals []uint64
	// SimTime is the simulated time the batch consumed on the shard's node
	// (stage + kernels + host serve + persistence/commit).
	SimTime sim.Duration
	// Ops echoes the batch's operation count.
	Ops int
	// WallStage/WallKernel/WallPersist are host wall-clock durations of the
	// corresponding Apply sections. The simulator burns real CPU running
	// kernels, so these let per-request traces place stage boundaries on the
	// wall timeline without touching the simulated clock.
	WallStage, WallKernel, WallPersist time.Duration
}

// Shard is one keyspace partition: a private simulated node holding a
// gpKVS-layout store (Sets × 8 ways × 16 B on PM, HBM working mirror),
// applying batches as kernel transactions under the configured mode. A
// Shard is not safe for concurrent use; the server drives each shard from
// exactly one worker goroutine.
type Shard struct {
	id       int
	mode     workloads.Mode
	env      *workloads.Env
	sets     int
	maxBatch int
	blocks   int // kernel grid (and HCL log geometry)

	pmFile    *fsim.File // PM-resident store
	txFile    *fsim.File // transaction-active flag
	dedupFile *fsim.File // PM dedup table: per-client committed high-water marks
	jnlFile   *fsim.File // dedup undo journal (count-last, valid only while tx set)
	oraFile   *fsim.File // MVCC timestamp-oracle reservation (monotone, unjournaled)
	mirror    uint64     // HBM working mirror
	keysB     uint64     // HBM staging: SET keys
	valsB     uint64     // HBM staging: SET values
	delsB     uint64     // HBM staging: DEL keys
	getsB     uint64     // HBM staging: GET keys
	outB      uint64     // HBM staging: GET results

	// HCL logs, one per launch geometry. The HCL layout mirrors the kernel
	// grid (Insert requires an exact geometry match), so a fixed
	// MaxBatch-sized log would force every mutate kernel to launch the full
	// grid no matter how small the batch. Instead each power-of-two block
	// count up to the full grid gets its own log, a mutate launch uses the
	// smallest grid covering its fill, and recovery replays every log (empty
	// partitions cost nothing).
	geoms []int      // ascending block counts; last == blocks
	logs  []*gpm.Log // parallel to geoms

	// model is the committed-state oracle: it reflects exactly the batches
	// that were acknowledged, survives a simulated crash (it models what
	// clients were promised), and is what Verify compares the durable store
	// against after recovery.
	model []uint64 // slot -> key, value (2 u64 per slot)

	// dedupShadow is the host-side mirror of the PM dedup table (2 u64 per
	// table slot: cid, seq); authoritative between crashes, reloaded from PM
	// durable state on Restart. tally counts model applications per request
	// ID — the duplicate-apply detector chaos campaigns assert on.
	dedupShadow    []uint64
	tally          map[ReqID]int
	noDedupPersist bool // negative control: dedup state never reaches PM

	// oraShadow mirrors the durable oracle reservation; mvcc is the
	// committed multi-version view the snapshot-read and conflict-check
	// surfaces run against (its own lock — see mvccState).
	oraShadow uint64
	mvcc      *mvccState

	// plan, when set, injects a power failure inside a future Apply call;
	// fired keeps the triggered plan so the recovery path can honor its
	// fault model and re-crash depth.
	plan       *ShardCrashPlan
	fired      *ShardCrashPlan
	applyCount int64 // mutation-bearing Apply calls seen (plan trigger index)

	ops  int64
	down bool // crashed and not yet restarted

	// audit, when set, receives crash/restart/verify events — the recovery
	// audit trail. Nil disables (obs.AuditLog methods are nil-safe).
	audit *obs.AuditLog
}

// ShardConfig sizes one shard.
type ShardConfig struct {
	Mode       workloads.Mode
	Sets       int // hash sets (store = Sets × 8 ways × 16 B)
	MaxBatch   int // max operations per admitted batch
	Workers    int // GPU block goroutines (0 = GOMAXPROCS)
	CAPThreads int // CPU threads for CAP persist phases and host serving
	Seed       uint64
}

// SupportedModes lists the persistence modes gpmserve can run. GPUfs
// deadlocks on fine-grained KVS updates and CPU-only has no GPU batches to
// dispatch, so both are excluded (as in the gpKVS workload).
func SupportedModes() []workloads.Mode {
	return []workloads.Mode{
		workloads.GPM, workloads.GPMeADR, workloads.GPMNDP,
		workloads.CAPfs, workloads.CAPmm, workloads.CAPeADR,
	}
}

// ModeByName resolves a servable mode name (e.g. "GPM", "CAP-fs"),
// rejecting modes the server cannot run.
func ModeByName(name string) (workloads.Mode, error) {
	var valid []string
	for _, m := range SupportedModes() {
		if m.String() == name {
			return m, nil
		}
		valid = append(valid, m.String())
	}
	return 0, fmt.Errorf("serve: unsupported mode %q (valid: %s)", name, strings.Join(valid, ", "))
}

// ModeSupported reports whether mode can serve.
func ModeSupported(mode workloads.Mode) bool {
	for _, m := range SupportedModes() {
		if m == mode {
			return true
		}
	}
	return false
}

// NewShard builds one shard on a fresh simulated node.
func NewShard(id int, cfg ShardConfig) (*Shard, error) {
	if !ModeSupported(cfg.Mode) {
		return nil, fmt.Errorf("serve: mode %s cannot serve", cfg.Mode)
	}
	if cfg.Sets < 1 {
		return nil, fmt.Errorf("serve: sets must be >= 1, got %d", cfg.Sets)
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: max batch must be >= 1, got %d", cfg.MaxBatch)
	}
	if cfg.CAPThreads < 1 {
		cfg.CAPThreads = 16
	}
	s := &Shard{
		id:       id,
		mode:     cfg.Mode,
		sets:     cfg.Sets,
		maxBatch: cfg.MaxBatch,
		blocks:   (cfg.MaxBatch*kvstore.ThreadGroup + kvstore.TPB - 1) / kvstore.TPB,
	}
	for g := 1; g < s.blocks; g *= 2 {
		s.geoms = append(s.geoms, g)
	}
	s.geoms = append(s.geoms, s.blocks)
	store := s.storeBytes()
	var logSize int64
	for _, g := range s.geoms {
		logSize += logSizeFor(g)
	}
	staging := int64(cfg.MaxBatch) * 8 * 5
	wcfg := workloads.Config{
		Seed:       cfg.Seed,
		CAPThreads: cfg.CAPThreads,
		Workers:    cfg.Workers,
		HBMSize:    store + staging + 1<<20,
		DRAMSize:   store + 1<<20, // CAP bounce buffers
		PMSize:     store + logSize + dedupTableBytes + dedupJnlBytes(cfg.MaxBatch) + 64 + 1<<20,
	}
	s.env = workloads.NewEnv(cfg.Mode, wcfg)

	sp := s.env.Ctx.Space
	var err error
	if s.pmFile, err = s.env.Ctx.FS.Create("/pm/kvs.store", store, 0); err != nil {
		return nil, err
	}
	if s.txFile, err = s.env.Ctx.FS.Create("/pm/kvs.tx", 64, 0); err != nil {
		return nil, err
	}
	if s.dedupFile, err = s.env.Ctx.FS.Create("/pm/kvs.dedup", dedupTableBytes, 0); err != nil {
		return nil, err
	}
	if s.jnlFile, err = s.env.Ctx.FS.Create("/pm/kvs.dedup.jnl", dedupJnlBytes(cfg.MaxBatch), 0); err != nil {
		return nil, err
	}
	if s.oraFile, err = s.env.Ctx.FS.Create("/pm/kvs.oracle", 64, 0); err != nil {
		return nil, err
	}
	s.mirror = sp.AllocHBM(store)
	s.keysB = sp.AllocHBM(int64(cfg.MaxBatch) * 8)
	s.valsB = sp.AllocHBM(int64(cfg.MaxBatch) * 8)
	s.delsB = sp.AllocHBM(int64(cfg.MaxBatch) * 8)
	s.getsB = sp.AllocHBM(int64(cfg.MaxBatch) * 8)
	s.outB = sp.AllocHBM(int64(cfg.MaxBatch) * 8)
	s.model = make([]uint64, cfg.Sets*kvstore.Ways*2)
	s.dedupShadow = make([]uint64, dedupSlots*2)
	s.tally = make(map[ReqID]int)
	s.mvcc = newMVCC()

	// The empty store is durable from the start.
	sp.PersistRange(s.pmFile.Mmap(), int(store))
	sp.PersistRange(s.txFile.Mmap(), 8)
	sp.PersistRange(s.dedupFile.Mmap(), int(dedupTableBytes))
	sp.PersistRange(s.jnlFile.Mmap(), int(dedupJnlBytes(cfg.MaxBatch)))
	sp.PersistRange(s.oraFile.Mmap(), 64)

	if s.logged() {
		for _, g := range s.geoms {
			log, err := s.env.Ctx.LogCreateHCL(logPath(g), logSizeFor(g), g, kvstore.TPB)
			if err != nil {
				return nil, err
			}
			s.logs = append(s.logs, log)
		}
	}
	return s, nil
}

// logPath names the HCL log file for a g-block grid.
func logPath(g int) string { return fmt.Sprintf("/pm/kvs.log.g%d", g) }

// logSizeFor sizes a g-block HCL log for two undo entries per thread.
func logSizeFor(g int) int64 {
	return int64(g*kvstore.TPB)*2*kvstore.LogEntryBytes + 1<<16
}

// gridFor returns the smallest launch geometry whose grid covers nOps
// thread groups (and therefore has a matching HCL log).
func (s *Shard) gridFor(nOps int) int {
	need := (nOps*kvstore.ThreadGroup + kvstore.TPB - 1) / kvstore.TPB
	for _, g := range s.geoms {
		if g >= need {
			return g
		}
	}
	return s.blocks
}

// logFor returns the HCL log matching a g-block launch.
func (s *Shard) logFor(g int) *gpm.Log {
	for i, geom := range s.geoms {
		if geom == g {
			return s.logs[i]
		}
	}
	panic(fmt.Sprintf("serve: no HCL log for %d-block grid", g))
}

// ID returns the shard index.
func (s *Shard) ID() int { return s.id }

// SetAudit attaches the recovery audit trail; crash injection, Restart and
// Verify record structured events to it. Nil detaches.
func (s *Shard) SetAudit(l *obs.AuditLog) { s.audit = l }

// Mode returns the shard's persistence mode.
func (s *Shard) Mode() workloads.Mode { return s.mode }

// Ops returns the total operations applied (committed batches only).
func (s *Shard) Ops() int64 { return s.ops }

// Env exposes the shard's execution environment (telemetry attachment,
// timeline inspection).
func (s *Shard) Env() *workloads.Env { return s.env }

// SlotOf returns the store slot index a key maps to; the batcher uses it
// for per-epoch conflict tracking and the hot-key cache.
func (s *Shard) SlotOf(key uint64) int {
	set, way := kvstore.HashKey(key, s.sets)
	return set*kvstore.Ways + way
}

// ModelPair returns the committed (key, value) pair of a slot — the state
// acknowledged clients were promised, which the hot-key cache mirrors.
// Only safe from the goroutine driving Apply.
func (s *Shard) ModelPair(slot int) (key, val uint64) {
	return s.model[slot*2], s.model[slot*2+1]
}

func (s *Shard) storeBytes() int64 {
	return int64(s.sets) * kvstore.Ways * kvstore.PairBytes
}

func (s *Shard) slotAddr(base uint64, set, way int) uint64 {
	return base + uint64((set*kvstore.Ways+way)*kvstore.PairBytes)
}

// logged reports whether this mode undo-logs mutations.
func (s *Shard) logged() bool {
	return s.mode.UsesGPM() || s.mode == workloads.GPMNDP
}

// checkBatch rejects batches that violate the kernel preconditions: size
// limits and the one-mutation-per-slot rule. Violations indicate a batcher
// bug; refusing beats a silently scheduling-dependent store image.
func (s *Shard) checkBatch(b *Batch) error {
	if len(b.SetKeys) != len(b.SetVals) {
		return fmt.Errorf("serve: shard %d: %d SET keys with %d values", s.id, len(b.SetKeys), len(b.SetVals))
	}
	if (b.SetIDs != nil && len(b.SetIDs) != len(b.SetKeys)) ||
		(b.DelIDs != nil && len(b.DelIDs) != len(b.DelKeys)) ||
		len(b.DedupCID) != len(b.DedupSeq) || len(b.DedupCID) > mutCap(s.maxBatch) {
		return fmt.Errorf("serve: shard %d: malformed request-ID arrays (setids=%d delids=%d advances=%d/%d)",
			s.id, len(b.SetIDs), len(b.DelIDs), len(b.DedupCID), len(b.DedupSeq))
	}
	if len(b.VerKeys) != len(b.VerVals) || len(b.VerKeys) != len(b.VerDel) ||
		len(b.VerKeys) != len(b.VerTS) ||
		(b.VerIDs != nil && len(b.VerIDs) != len(b.VerKeys)) ||
		len(b.VerKeys) > mutCap(s.maxBatch) {
		return fmt.Errorf("serve: shard %d: malformed version arrays (keys=%d vals=%d del=%d ts=%d ids=%d cap=%d)",
			s.id, len(b.VerKeys), len(b.VerVals), len(b.VerDel), len(b.VerTS), len(b.VerIDs), mutCap(s.maxBatch))
	}
	if b.Mutations() > s.maxBatch || len(b.GetKeys) > s.maxBatch {
		return fmt.Errorf("serve: shard %d: batch exceeds max %d (sets=%d dels=%d gets=%d)",
			s.id, s.maxBatch, len(b.SetKeys), len(b.DelKeys), len(b.GetKeys))
	}
	seen := make(map[int]bool, b.Mutations())
	for _, keys := range [][]uint64{b.SetKeys, b.DelKeys} {
		for _, key := range keys {
			slot := s.SlotOf(key)
			if seen[slot] {
				return fmt.Errorf("serve: shard %d: two mutations on slot %d in one batch", s.id, slot)
			}
			seen[slot] = true
		}
	}
	return nil
}

// stage ships the batch's operations to the GPU (cudaMemcpy HtoD).
func (s *Shard) stage(b *Batch) {
	sp := s.env.Ctx.Space
	if len(b.SetKeys) > 0 {
		sp.WriteCPU(s.keysB, u64Bytes(b.SetKeys))
		sp.WriteCPU(s.valsB, u64Bytes(b.SetVals))
	}
	if len(b.DelKeys) > 0 {
		sp.WriteCPU(s.delsB, u64Bytes(b.DelKeys))
	}
	if len(b.GetKeys) > 0 {
		sp.WriteCPU(s.getsB, u64Bytes(b.GetKeys))
	}
	n := int64(len(b.SetKeys)*16 + len(b.DelKeys)*8 + len(b.GetKeys)*8)
	s.env.Ctx.Timeline.Add("stage", sp.DMA.TransferDown(n))
}

func (s *Shard) setTxFlag(on bool) {
	v := uint64(0)
	if on {
		v = 1
	}
	s.env.Ctx.RunCPU("tx-flag", 1, func(t *cpusim.Thread) {
		t.WriteU64(s.txFile.Mmap(), v)
		t.PersistRange(s.txFile.Mmap(), 8)
	})
}

// mutateKernel runs the SET or DELETE kernel (a DELETE is a SET of the
// empty pair): thread groups cooperate per op, the home-way thread logs the
// old pair, updates mirror (and PM directly under GPM-class modes), and
// persists under plain GPM/eADR. The grid is the smallest geometry covering
// the batch's fill, and the undo log with that exact geometry is used — a
// quarter-full epoch does not pay for a MaxBatch-sized launch.
func (s *Shard) mutateKernel(segment string, keys, vals uint64, nOps int, del, logging bool) error {
	if nOps == 0 {
		return nil
	}
	sets := s.sets
	pm := s.pmFile.Mmap()
	mirror := s.mirror
	grid := s.gridFor(nOps)
	var log *gpm.Log
	if logging {
		log = s.logFor(grid)
	}
	direct := s.mode.UsesGPM() || s.mode == workloads.GPMNDP
	persist := s.mode.UsesGPM()
	var kerr error
	s.env.Ctx.Launch(segment, grid, kvstore.TPB, func(t *gpu.Thread) {
		gid := t.GlobalID()
		op := gid / kvstore.ThreadGroup
		if op >= nOps {
			return
		}
		key := t.LoadU64(keys + uint64(op)*8)
		t.Compute(kvstore.GPUOpCost)
		set, way := kvstore.HashKey(key, sets)
		if gid%kvstore.ThreadGroup != way {
			return // each group thread probes its own way; only home proceeds
		}
		mAddr := s.slotAddr(mirror, set, way)
		var newKey, newVal uint64
		if del {
			if t.LoadU64(mAddr) != key {
				return // miss: nothing to delete
			}
		} else {
			newKey = key
			newVal = t.LoadU64(vals + uint64(op)*8)
		}
		if logging {
			var entry [kvstore.LogEntryBytes]byte
			binary.LittleEndian.PutUint32(entry[0:], uint32(set))
			binary.LittleEndian.PutUint32(entry[4:], uint32(way))
			binary.LittleEndian.PutUint64(entry[8:], t.LoadU64(mAddr))
			binary.LittleEndian.PutUint64(entry[16:], t.LoadU64(mAddr+8))
			if err := log.Insert(t, entry[:], -1); err != nil {
				kerr = err
				return
			}
		}
		t.StoreU64(mAddr, newKey)
		t.StoreU64(mAddr+8, newVal)
		if direct {
			pAddr := s.slotAddr(pm, set, way)
			t.StoreU64(pAddr, newKey)
			t.StoreU64(pAddr+8, newVal)
			if persist {
				gpm.Persist(t)
			}
		}
	})
	return kerr
}

// getKernel services batched GETs from the device-resident mirror.
func (s *Shard) getKernel(nGets int) {
	if nGets == 0 {
		return
	}
	sets := s.sets
	mirror, gets, out := s.mirror, s.getsB, s.outB
	blocks := (nGets + kvstore.TPB - 1) / kvstore.TPB
	s.env.Ctx.Launch("kvs-get", blocks, kvstore.TPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= nGets {
			return
		}
		key := t.LoadU64(gets + uint64(i)*8)
		t.Compute(kvstore.GPUOpCost)
		set, way := kvstore.HashKey(key, sets)
		mAddr := s.slotAddr(mirror, set, way)
		var val uint64
		if t.LoadU64(mAddr) == key {
			val = t.LoadU64(mAddr + 8)
		}
		t.StoreU64(out+uint64(i)*8, val)
	})
}

// hostServe accounts the host side of the server (parse, dispatch,
// response assembly) — identical work under every persistence system.
func (s *Shard) hostServe(totalOps int) {
	s.env.Ctx.RunCPU("kvs-serve", s.env.Cfg.CAPThreads, func(t *cpusim.Thread) {
		per := (totalOps + t.N - 1) / t.N
		mine := per
		if t.ID*per+mine > totalOps {
			mine = totalOps - t.ID*per
		}
		if mine > 0 {
			t.Compute(sim.Duration(mine) * kvstore.HostOpCost)
		}
	})
}

// commit makes the batch durable and closes the transaction, per mode.
func (s *Shard) commit(b *Batch, logging bool) error {
	switch {
	case s.mode.UsesGPM():
		if logging {
			s.env.PersistKernelBegin()
			for _, grid := range s.usedGrids(b) {
				log := s.logFor(grid)
				s.env.Ctx.Launch("kvs-logclear", grid, kvstore.TPB, func(t *gpu.Thread) {
					log.ClearIfUsed(t)
				})
			}
			s.env.PersistKernelEnd()
			s.setTxFlag(false)
		}
	case s.mode == workloads.GPMNDP:
		// Kernels stored PM directly but the CPU must flush; it cannot know
		// which slots changed, so the whole store flushes.
		s.env.Cap.FlushOnly(s.pmFile.Mmap(), s.storeBytes())
		if logging {
			for _, grid := range s.usedGrids(b) {
				s.logFor(grid).HostClearAll()
			}
			s.setTxFlag(false)
		}
	default:
		// CAP: ship the touched pre-defined sections to the CPU to persist.
		for _, run := range s.touchedSections(b) {
			if err := workloads.PersistBuffer(s.env, s.pmFile, run.off, s.mirror+uint64(run.off), run.n); err != nil {
				return err
			}
		}
	}
	return nil
}

// usedGrids returns the distinct launch geometries the batch's mutate
// kernels used — the logs commit must truncate.
func (s *Shard) usedGrids(b *Batch) []int {
	var grids []int
	if n := len(b.SetKeys); n > 0 {
		grids = append(grids, s.gridFor(n))
	}
	if n := len(b.DelKeys); n > 0 {
		if g := s.gridFor(n); len(grids) == 0 || g != grids[0] {
			grids = append(grids, g)
		}
	}
	return grids
}

type secRun struct{ off, n int64 }

// touchedSections returns the merged section runs the batch's mutations
// touch (CAP persists the store in 16 KB pre-defined chunks).
func (s *Shard) touchedSections(b *Batch) []secRun {
	nSections := (s.storeBytes() + kvstore.Section - 1) / kvstore.Section
	touched := make([]bool, nSections)
	for _, keys := range [][]uint64{b.SetKeys, b.DelKeys} {
		for _, key := range keys {
			touched[int64(s.SlotOf(key))*kvstore.PairBytes/kvstore.Section] = true
		}
	}
	var runs []secRun
	for sec := int64(0); sec < nSections; sec++ {
		if !touched[sec] {
			continue
		}
		e := sec
		for e+1 < nSections && touched[e+1] {
			e++
		}
		off := sec * kvstore.Section
		end := (e + 1) * kvstore.Section
		if end > s.storeBytes() {
			end = s.storeBytes()
		}
		runs = append(runs, secRun{off, end - off})
		sec = e
	}
	return runs
}

// commitModel applies an acknowledged batch to the committed-state oracle
// and tallies each identified mutation — a correctly deduplicating server
// never lets any request ID's tally pass 1. Versioned batches (VerKeys
// set) tally from VerIDs — the full squashed logical history — and feed
// the MVCC chains; the kernel arrays only carry per-slot winners there.
func (s *Shard) commitModel(b *Batch) {
	for i, key := range b.SetKeys {
		slot := s.SlotOf(key)
		s.model[slot*2] = key
		s.model[slot*2+1] = b.SetVals[i]
		if b.SetIDs != nil && !b.SetIDs[i].Zero() {
			s.tally[b.SetIDs[i]]++
		}
	}
	for i, key := range b.DelKeys {
		slot := s.SlotOf(key)
		if s.model[slot*2] == key {
			s.model[slot*2] = 0
			s.model[slot*2+1] = 0
		}
		if b.DelIDs != nil && !b.DelIDs[i].Zero() {
			s.tally[b.DelIDs[i]]++
		}
	}
	if len(b.VerKeys) > 0 {
		if b.VerIDs != nil {
			for _, id := range b.VerIDs {
				if !id.Zero() {
					s.tally[id]++
				}
			}
		}
		s.mvccCommit(b)
	} else if b.Mutations() > 0 {
		s.mvccLegacyCommit(b)
	}
}

// Apply executes one batch as a transaction and returns the GET results.
// On return the batch's mutations are durable (the response path includes
// the mode's persistence step), so the caller may acknowledge clients. If
// an armed ShardCrashPlan triggers on this call, Apply power-fails the
// shard at the planned pipeline point and returns *ShardDownError.
func (s *Shard) Apply(b *Batch) (*BatchResult, error) {
	if s.down {
		return nil, fmt.Errorf("serve: shard %d is down (crashed; Restart first)", s.id)
	}
	if err := s.checkBatch(b); err != nil {
		return nil, err
	}
	var cp *ShardCrashPlan
	if s.plan != nil && s.mode.UsesGPM() && b.Mutations() > 0 {
		s.applyCount++
		if s.applyCount >= s.plan.ApplyIndex {
			cp, s.plan = s.plan, nil
		}
	}
	return s.apply(b, cp)
}

// apply is the batch transaction body, with the crash plan's power-fail
// checkpoints woven between pipeline stages (cp nil = no injection).
func (s *Shard) apply(b *Batch, cp *ShardCrashPlan) (*BatchResult, error) {
	n := b.Ops()
	if n == 0 {
		// A batch with no kernel ops can still service clients: an epoch
		// whose riders are all precomputed snapshot reads. Tally them.
		s.ops += int64(b.LogicalOps)
		return &BatchResult{}, nil
	}
	ctx := s.env.Ctx
	start := ctx.Timeline.Total()
	wall0 := time.Now()
	spStage := ctx.SpanStart()
	s.stage(b)
	ctx.SpanEnd(telemetry.TrackPCIe, "serve-stage", "serve", spStage)
	logging := s.logged() && b.Mutations() > 0
	wall1 := time.Now()

	spKernel := ctx.SpanStart()
	if logging {
		// The dedup journal is written while the tx flag is still CLEAR, so
		// a crash landing before the flag never replays a stale journal;
		// once the flag is set, journal + HCL logs roll back the dedup table
		// and the store as one transaction.
		s.dedupJournal(b)
		s.setTxFlag(true)
	}
	if cp != nil && cp.Point == CrashBeforeKernel {
		return nil, s.crashNow(cp, b, "staged and armed, before mutate kernel")
	}
	s.env.PersistKernelBegin()
	if cp != nil && cp.Point == CrashMidKernel {
		after := cp.AbortAfterOps
		ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= after })
	}
	errSet := s.mutateKernel("kvs-set", s.keysB, s.valsB, len(b.SetKeys), false, logging)
	errDel := s.mutateKernel("kvs-del", s.delsB, 0, len(b.DelKeys), true, logging)
	if cp != nil && cp.Point == CrashMidKernel {
		ctx.Dev.SetAbortCheck(nil)
		s.env.PersistKernelEnd()
		return nil, s.crashNow(cp, b, fmt.Sprintf("kernel aborted after %d device ops", cp.AbortAfterOps))
	}
	if errSet != nil {
		return nil, errSet
	}
	if errDel != nil {
		return nil, errDel
	}
	s.getKernel(len(b.GetKeys))
	s.env.PersistKernelEnd()
	ctx.SpanEnd(telemetry.TrackKernel, "serve-kernel", "serve", spKernel)
	if logging {
		s.dedupTableWrite(b)
		s.oracleWrite(b)
	}
	if cp != nil && cp.Point == CrashBeforeCommit {
		return nil, s.crashNow(cp, b, "mutations persisted, before log clear")
	}
	wall2 := time.Now()

	spCommit := ctx.SpanStart()
	s.hostServe(n)
	if err := s.commit(b, logging); err != nil {
		return nil, err
	}
	if !logging {
		// Read-only batches and non-logging modes advance the dedup table
		// outside any transaction: replaying a GET is harmless, and the
		// non-logging modes have no crash injection to survive.
		s.dedupTableWrite(b)
		s.oracleWrite(b)
	}
	ctx.SpanEnd(telemetry.TrackPersist, "serve-persist", "serve", spCommit)
	wall3 := time.Now()

	out := make([]uint64, len(b.GetKeys))
	for i := range out {
		out[i] = s.env.Ctx.Space.ReadU64(s.outB + uint64(i)*8)
	}
	s.commitModel(b)
	s.dedupShadowAdvance(b)
	if b.LogicalOps > 0 {
		s.ops += int64(b.LogicalOps)
	} else {
		s.ops += int64(n)
	}
	if cp != nil && cp.Point == CrashBeforeReply {
		return nil, s.crashNow(cp, b, "batch committed durably, acks lost")
	}
	return &BatchResult{
		GetVals: out, SimTime: s.env.Ctx.Timeline.Total() - start, Ops: n,
		WallStage:   wall1.Sub(wall0),
		WallKernel:  wall2.Sub(wall1),
		WallPersist: wall3.Sub(wall2),
	}, nil
}

// CrashMidBatch starts applying b, aborts the mutation kernel after
// abortAfterOps device operations, and power-fails the node — the §6.2
// worst case of dying inside an uncommitted transaction. The batch is NOT
// acknowledged (the oracle ignores it); Restart must undo its partial
// effects. Only GPM-class logging modes support mid-batch crashes.
func (s *Shard) CrashMidBatch(b *Batch, abortAfterOps int64) error {
	if !s.mode.UsesGPM() {
		return fmt.Errorf("serve: mid-batch crash requires a GPM mode, shard runs %s", s.mode)
	}
	if s.down {
		return fmt.Errorf("serve: shard %d already down", s.id)
	}
	if err := s.checkBatch(b); err != nil {
		return err
	}
	if b.Mutations() == 0 {
		return fmt.Errorf("serve: mid-batch crash needs mutations to abort")
	}
	s.stage(b)
	s.dedupJournalClear()
	s.setTxFlag(true)
	s.env.PersistKernelBegin()
	s.env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := s.mutateKernel("kvs-set", s.keysB, s.valsB, len(b.SetKeys), false, true)
	if err == nil {
		err = s.mutateKernel("kvs-del", s.delsB, 0, len(b.DelKeys), true, true)
	}
	s.env.Ctx.Dev.SetAbortCheck(nil)
	s.env.PersistKernelEnd()
	if err != nil {
		return err
	}
	s.env.Ctx.Crash()
	s.down = true
	s.audit.Record(obs.AuditEvent{
		Type: obs.AuditCrash, Shard: s.id, Mode: s.mode.String(),
		Point:     CrashMidKernel.String(),
		OracleHWM: s.oraShadow,
		Detail:    fmt.Sprintf("%d mutations at risk, kernel aborted after %d device ops", b.Mutations(), abortAfterOps),
	})
	return nil
}

// CrashPoint names a power-fail instant relative to the pipeline stages a
// batch moves through: form -> stage/kernel -> persist/commit -> reply.
// The durability contract is one-directional — an acknowledged mutation is
// always durable; a crash after commit but before the reply leaves a
// durable batch whose acks were simply lost (clients retry).
type CrashPoint int

const (
	// CrashBeforeKernel dies after the batch is staged on the device and
	// the transaction is armed, before the mutate kernel runs: recovery
	// finds the tx flag set with an empty log and just closes it.
	CrashBeforeKernel CrashPoint = iota
	// CrashMidKernel dies inside the mutate kernel (§6.2 worst case):
	// recovery must undo the partial batch from the HCL log.
	CrashMidKernel
	// CrashBeforeCommit dies after the mutate kernel fully ran and
	// persisted, before the log clear closes the transaction: recovery
	// must undo the complete (but uncommitted) batch.
	CrashBeforeCommit
	// CrashBeforeReply dies after the batch committed durably but before
	// any reply was released: the batch survives recovery and the shard
	// counts it committed; only the acknowledgements are lost.
	CrashBeforeReply
)

// CrashPoints lists every between-stage crash point, in pipeline order.
func CrashPoints() []CrashPoint {
	return []CrashPoint{CrashBeforeKernel, CrashMidKernel, CrashBeforeCommit, CrashBeforeReply}
}

func (p CrashPoint) String() string {
	switch p {
	case CrashBeforeKernel:
		return "before-kernel"
	case CrashMidKernel:
		return "mid-kernel"
	case CrashBeforeCommit:
		return "before-commit"
	case CrashBeforeReply:
		return "before-reply"
	default:
		return fmt.Sprintf("crashpoint(%d)", int(p))
	}
}

// CrashAt power-fails the shard at the given pipeline point while applying
// b. For every point except CrashBeforeReply the batch is NOT acknowledged
// (the oracle ignores it) and Restart must erase its effects; at
// CrashBeforeReply the batch is durable and counts as committed. Only
// GPM-class logging modes support crash injection (abortAfterOps bounds
// the device ops of a mid-kernel crash).
func (s *Shard) CrashAt(b *Batch, p CrashPoint, abortAfterOps int64) error {
	if p == CrashMidKernel {
		return s.CrashMidBatch(b, abortAfterOps)
	}
	if !s.mode.UsesGPM() {
		return fmt.Errorf("serve: crash injection requires a GPM mode, shard runs %s", s.mode)
	}
	if s.down {
		return fmt.Errorf("serve: shard %d already down", s.id)
	}
	if err := s.checkBatch(b); err != nil {
		return err
	}
	if b.Mutations() == 0 {
		return fmt.Errorf("serve: crash injection needs mutations to lose")
	}
	switch p {
	case CrashBeforeKernel:
		s.stage(b)
		s.dedupJournalClear()
		s.setTxFlag(true)
	case CrashBeforeCommit:
		s.stage(b)
		s.dedupJournalClear()
		s.setTxFlag(true)
		s.env.PersistKernelBegin()
		err := s.mutateKernel("kvs-set", s.keysB, s.valsB, len(b.SetKeys), false, true)
		if err == nil {
			err = s.mutateKernel("kvs-del", s.delsB, 0, len(b.DelKeys), true, true)
		}
		s.env.PersistKernelEnd()
		if err != nil {
			return err
		}
	case CrashBeforeReply:
		if _, err := s.Apply(b); err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: unknown crash point %d", int(p))
	}
	s.env.Ctx.Crash()
	s.down = true
	s.audit.Record(obs.AuditEvent{
		Type: obs.AuditCrash, Shard: s.id, Mode: s.mode.String(),
		Point:     p.String(),
		OracleHWM: s.oraShadow,
		Detail:    fmt.Sprintf("%d mutations at risk", b.Mutations()),
	})
	return nil
}

// Restart brings a crashed shard back: if the durable transaction flag is
// set it runs the Fig 6b recovery kernel to undo the partial batch, then
// reloads the HBM mirror from the durable store (the restart-time data
// load). It returns the simulated restore time.
func (s *Shard) Restart() (sim.Duration, error) { return s.RestartWithRecrash(0, nil, 0) }

// RestartWithRecrash is Restart with nested power failures injected during
// the recovery replay itself: depth times, the undo kernels are aborted
// after a shrinking device-op budget and the node power-fails again (under
// model when non-nil), before a final clean recovery completes. Undo
// replay is idempotent — entries are removed from the log only after their
// rollback is durable — so every retry converges.
func (s *Shard) RestartWithRecrash(depth int, model pmem.FaultModel, fseed uint64) (sim.Duration, error) {
	ctx := s.env.Ctx
	start := ctx.Timeline.Total()
	txSet := s.txFlagSet()
	var replayed []int
	var undone int64
	recrashes := 0
	if txSet {
		for d := depth; d > 0; d-- {
			// Die again mid-replay: bound the undo kernels to a shrinking
			// budget, then power-fail the half-recovered node.
			budget := int64(16 * d)
			ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= budget })
			s.recoverLogs() // partial by construction; errors surface on the final pass
			ctx.Dev.SetAbortCheck(nil)
			if model != nil {
				ctx.CrashWith(model, fseed+uint64(d))
			} else {
				ctx.Crash()
			}
			recrashes++
			s.audit.Record(obs.AuditEvent{
				Type: obs.AuditCrash, Shard: s.id, Mode: s.mode.String(),
				Point:  "mid-recovery",
				Detail: fmt.Sprintf("re-crash %d during recovery replay (budget %d device ops)", recrashes, budget),
			})
		}
		g, u, err := s.recoverLogs()
		if err != nil {
			return 0, err
		}
		replayed, undone = g, u
		s.dedupJournalRestore()
		s.setTxFlag(false)
	}
	// Reload the working mirror from the durable store (DMA down), the
	// restart cost every mode pays; the dedup shadow reloads the same way.
	snap := ctx.Space.SnapshotPersistent(s.pmFile.Mmap(), int(s.storeBytes()))
	ctx.Space.WriteCPU(s.mirror, snap)
	ctx.Timeline.Add("restore", ctx.Space.DMA.TransferDown(s.storeBytes()))
	s.dedupShadowReload()
	s.oraShadowReload()
	s.down = false
	restore := ctx.Timeline.Total() - start
	s.env.AddRestore(restore)
	s.audit.Record(obs.AuditEvent{
		Type: obs.AuditRestart, Shard: s.id, Mode: s.mode.String(),
		TxSet: txSet, Geometries: replayed, SlotsRolledBack: undone,
		RestoreUS: float64(restore) / 1e3,
		OracleHWM: s.oraShadow,
		Detail:    recrashDetail(recrashes),
	})
	return restore, nil
}

// recrashDetail annotates a restart audit event with nested-crash count.
func recrashDetail(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("survived %d nested re-crashes during replay", n)
}

// txFlagSet reads the durable transaction flag.
func (s *Shard) txFlagSet() bool {
	if !s.logged() {
		return false
	}
	snap := s.env.Ctx.Space.SnapshotPersistent(s.txFile.Mmap(), 8)
	return binary.LittleEndian.Uint64(snap) != 0
}

// recoverLogs replays every geometry's HCL log against the durable store
// (Fig 6b), returning the geometries replayed and undo entries applied.
func (s *Shard) recoverLogs() ([]int, int64, error) {
	ctx := s.env.Ctx
	pm := s.pmFile.Mmap()
	sets := s.sets
	var replayed []int
	var undone atomic.Int64 // recovery kernel threads run concurrently
	for i, g := range s.geoms {
		log, err := ctx.LogOpen(logPath(g))
		if err != nil {
			return nil, 0, err
		}
		s.logs[i] = log
		replayed = append(replayed, g)
		ctx.PersistBegin()
		var kerr error
		ctx.Launch("kvs-recover", g, kvstore.TPB, func(t *gpu.Thread) {
			// Undo this thread's logged entries newest-first until its
			// log partition is empty (Fig 6b).
			var entry [kvstore.LogEntryBytes]byte
			for log.Read(t, entry[:], -1) == nil {
				set := int(binary.LittleEndian.Uint32(entry[0:]))
				way := int(binary.LittleEndian.Uint32(entry[4:]))
				if set >= sets || way >= kvstore.Ways {
					kerr = fmt.Errorf("serve: corrupt log entry (set=%d way=%d)", set, way)
					return
				}
				addr := s.slotAddr(pm, set, way)
				t.StoreU64(addr, binary.LittleEndian.Uint64(entry[8:]))
				t.StoreU64(addr+8, binary.LittleEndian.Uint64(entry[16:]))
				gpm.Persist(t)
				// Remove only after the undo is durable.
				if err := log.Remove(t, kvstore.LogEntryBytes, -1); err != nil {
					kerr = err
					return
				}
				undone.Add(1)
			}
		})
		ctx.PersistEnd()
		if kerr != nil {
			return nil, 0, kerr
		}
	}
	return replayed, undone.Load(), nil
}

// Verify checks that the DURABLE store matches the committed-state oracle
// slot by slot — acknowledged mutations present, unacknowledged ones absent.
func (s *Shard) Verify() error {
	snap := s.env.Ctx.Space.SnapshotPersistent(s.pmFile.Mmap(), int(s.storeBytes()))
	for slot := 0; slot < s.sets*kvstore.Ways; slot++ {
		key := binary.LittleEndian.Uint64(snap[slot*kvstore.PairBytes:])
		val := binary.LittleEndian.Uint64(snap[slot*kvstore.PairBytes+8:])
		if key != s.model[slot*2] || val != s.model[slot*2+1] {
			err := fmt.Errorf("serve: shard %d durable slot %d = (%d,%d), want (%d,%d)",
				s.id, slot, key, val, s.model[slot*2], s.model[slot*2+1])
			s.audit.Record(obs.AuditEvent{
				Type: obs.AuditVerify, Shard: s.id, Mode: s.mode.String(),
				Outcome: "fail", Err: err.Error(),
			})
			return err
		}
	}
	s.audit.Record(obs.AuditEvent{
		Type: obs.AuditVerify, Shard: s.id, Mode: s.mode.String(), Outcome: "ok",
	})
	return nil
}

func u64Bytes(vals []uint64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out
}
