GO ?= go

.PHONY: build test race vet check recover-smoke figures quick-figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector is ~10x slower and CI runners can be single-core, so
# give the heavier packages explicit headroom over go test's 10m default.
race:
	$(GO) test -race -timeout 25m ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate: everything CI runs.
check: vet race recover-smoke
	$(GO) build ./...

# Deterministic crash-campaign smoke: every recoverable workload, all four
# fault models, swept crash points, one nested re-crash per recovery.
recover-smoke:
	$(GO) run ./cmd/gpmrecover -quick -sweep -maxpoints 2 -recrash-depth 1

# Regenerate every paper figure/table into reports/.
figures:
	$(GO) run ./cmd/gpmbench -experiment all

# Same, at test scale, with a trace + metrics dump (see README Observability).
quick-figures:
	$(GO) run ./cmd/gpmbench -experiment all -quick \
		-trace reports/trace.json -metrics reports/metrics.tsv \
		-timebreakdown reports/timebreakdown.tsv

clean:
	rm -f reports/out_*.txt reports/trace.json reports/metrics.tsv reports/timebreakdown.tsv
