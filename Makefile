GO ?= go

.PHONY: build test race vet check figures quick-figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate: everything CI runs.
check: vet race
	$(GO) build ./...

# Regenerate every paper figure/table into reports/.
figures:
	$(GO) run ./cmd/gpmbench -experiment all

# Same, at test scale, with a trace + metrics dump (see README Observability).
quick-figures:
	$(GO) run ./cmd/gpmbench -experiment all -quick \
		-trace reports/trace.json -metrics reports/metrics.tsv \
		-timebreakdown reports/timebreakdown.tsv

clean:
	rm -f reports/out_*.txt reports/trace.json reports/metrics.tsv reports/timebreakdown.tsv
