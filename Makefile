GO ?= go

.PHONY: build test race vet check recover-smoke serve-smoke obs-smoke chaos-smoke txn-smoke determinism bench bench-gate figures quick-figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector is ~10x slower and CI runners can be single-core, so
# give the heavier packages explicit headroom over go test's 10m default.
race:
	$(GO) test -race -timeout 25m ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate: everything CI runs.
check: vet race recover-smoke serve-smoke obs-smoke chaos-smoke txn-smoke
	$(GO) build ./...

# Deterministic crash-campaign smoke: every recoverable workload, all four
# fault models, swept crash points, one nested re-crash per recovery.
recover-smoke:
	$(GO) run ./cmd/gpmrecover -quick -sweep -maxpoints 2 -recrash-depth 1

# Serving-path smoke: real TCP loopback load through the pipelined gpKVS
# front-end (10k ops, 2 shards, GPM), kill-and-recover every shard at each
# between-stage crash point, verify the durable store against the committed
# oracle, and gate the run against the committed baseline (fail if ops/s
# drops below 0.9x or p99 rises above 1.1x). Writes BENCH_serve.json.
serve-smoke:
	$(GO) run ./cmd/gpmserve -selftest -ops 10000 -shards 2 \
		-baseline BENCH_serve.json -out BENCH_serve.json

# Serve-level chaos smoke: deterministic crash campaigns over the whole
# serving stack — retrying clients through fault-injecting network
# schedules into shards that power-fail at swept crash points — asserting
# exactly-once delivery, no lost updates, and durable-state integrity.
# Then the negative control: with PM dedup persistence deliberately
# broken, the campaign MUST catch the violation (exit 1) and shrink it.
chaos-smoke:
	$(GO) run ./cmd/gpmchaos -serve -mode GPM -schedule clean,chaos
	@$(GO) run ./cmd/gpmchaos -serve -mode GPM -schedule clean -model clean \
		-break-dedup > /dev/null 2>&1; \
	if [ $$? -ne 1 ]; then \
		echo "chaos-smoke: negative control NOT caught (broken dedup passed)"; exit 1; \
	else echo "chaos-smoke: negative control caught"; fi

# Transactional serving smoke: zipf hot-key RMW transactions over wire
# protocol v2 through the exactly-once client, with the per-key snapshot-
# isolation ledger verified against the durable image and the conflict
# epoch-fill gate (squashing >= 2x the PR-8 chained-epoch baseline). Then
# the serve chaos campaign re-runs with transaction clients mixed in, and
# the -break-si negative control (commit validation off) MUST be caught.
txn-smoke:
	$(GO) run ./cmd/gpmserve -selftest -ops 6000 -shards 2 -no-recover \
		-retry-pass=false -out /tmp/bench_txn_smoke.json
	$(GO) run ./cmd/gpmchaos -serve -mode GPM -schedule clean,chaos -txn
	@$(GO) run ./cmd/gpmchaos -serve -mode GPM -schedule clean -model clean \
		-txn -break-si > /dev/null 2>&1; \
	if [ $$? -ne 1 ]; then \
		echo "txn-smoke: negative control NOT caught (broken SI passed)"; exit 1; \
	else echo "txn-smoke: negative control caught"; fi

# Observability smoke: run a real gpmserve process with the admin endpoint,
# audit trail, and metrics flush on, drive TCP load, assert /metrics,
# /healthz, /statusz, and /debug/trace are well-formed and show the load,
# then SIGTERM and check the drain leaves metrics + audit files behind.
obs-smoke:
	$(GO) run ./cmd/obssmoke

# The engine's bit-identity contract: 1 worker vs 8 workers must produce
# identical simulated durations, metrics TSV, trace bytes, and campaign
# verdicts — under the race detector, at 1 and 4 host CPUs.
determinism:
	$(GO) test -race -timeout 25m -cpu=1,4 -run 'TestDeterminism' ./internal/experiments/

# Serial vs parallel campaign wall-clock (workers = GOMAXPROCS), with the
# verdict-identity check; writes BENCH_parallel.json. On a single-core
# runner the report honestly sets speedup_measured=false (and refuses to
# clobber a measured baseline); multi-core runners then pass bench-gate.
bench:
	$(GO) run ./cmd/gpmrecover -quick -bench BENCH_parallel.json -maxpoints 2

# Accept BENCH_parallel.json only if the speedup was actually measured on
# a multi-core box AND parallelism actually paid (>= 2x). Run after bench
# on the multi-core CI runner before committing the artifact.
bench-gate:
	@python3 -c "import json,sys; b = json.load(open('BENCH_parallel.json')); \
	assert b['identical_results'], 'parallel sweep diverged from serial reference'; \
	assert b.get('speedup_measured'), 'speedup not measured (GOMAXPROCS=%s, numcpu=%s) - run on a multi-core box' % (b.get('gomaxprocs'), b.get('numcpu')); \
	assert b['speedup'] >= 2.0, 'speedup %.2fx < 2.0x' % b['speedup']; \
	print('bench-gate: %.2fx with %d workers on %d CPUs, verdicts identical' % (b['speedup'], b['workers'], b.get('numcpu', 0)))"

# Regenerate every paper figure/table into reports/.
figures:
	$(GO) run ./cmd/gpmbench -experiment all

# Same, at test scale, with a trace + metrics dump (see README Observability).
quick-figures:
	$(GO) run ./cmd/gpmbench -experiment all -quick \
		-trace reports/trace.json -metrics reports/metrics.tsv \
		-timebreakdown reports/timebreakdown.tsv

clean:
	rm -f reports/out_*.txt reports/trace.json reports/metrics.tsv reports/timebreakdown.tsv
