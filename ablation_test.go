package gpm_test

// Ablation benchmarks for the design choices DESIGN.md §4 calls out:
// entry striping in HCL (Fig 5), read-only data placement (§4.3), the
// double-buffered checkpoint, selective DDIO disabling, and the binomial
// poor-fit case (§4.3). Each bench reports the factor the design choice is
// worth, so a regression in any mechanism shows up as a changed metric.

import (
	"testing"

	gpmroot "github.com/gpm-sim/gpm"
	gpm "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/finance"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func ablCtx() *gpm.Context {
	return gpm.NewContext(sim.Default(), memsys.Config{
		HBMSize: 16 << 20, DRAMSize: 8 << 20, PMSize: 32 << 20,
	})
}

// BenchmarkAblationHCLStriping compares HCL's striped 16-byte inserts
// (Fig 5: SIMD stores, one coalesced transaction per stripe) against a
// naive layout where each thread writes its entry contiguously (32 scattered
// transactions per warp step).
func BenchmarkAblationHCLStriping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const blocks, tpb, entry = 16, 256, 16
		ctx := ablCtx()
		log, err := ctx.LogCreateHCL("/pm/abl-hcl", 4<<20, blocks, tpb)
		if err != nil {
			b.Fatal(err)
		}
		naive := ctx.Space.AllocPM(int64(blocks*tpb)*entry, 0)
		ctx.PersistBegin()
		striped := ctx.Dev.Launch("striped", blocks, tpb, func(t *gpu.Thread) {
			var e [entry]byte
			if err := log.Insert(t, e[:], -1); err != nil {
				b.Error(err)
			}
		})
		contiguous := ctx.Dev.Launch("contiguous", blocks, tpb, func(t *gpu.Thread) {
			var e [entry]byte
			// Naive: thread-contiguous entries — lanes hit different
			// 128B blocks, so nothing coalesces.
			t.StoreBytes(naive+uint64(t.GlobalID())*entry, e[:])
			gpmroot.Persist(t)
			t.StoreBytes(naive+uint64(t.GlobalID())*entry+8, e[8:])
			gpmroot.Persist(t)
		})
		ctx.PersistEnd()
		b.ReportMetric(float64(striped.Stats.PMWriteTxns), "striped_txns")
		b.ReportMetric(float64(contiguous.Stats.PMWriteTxns), "naive_txns")
		b.ReportMetric(float64(contiguous.Elapsed)/float64(striped.Elapsed), "striping_speedup_x")
	}
}

// BenchmarkAblationReadOnlyPlacement quantifies §4.3's rule that read-only
// inputs belong in device memory: the same reduction kernel reading its
// input from HBM versus directly from PM.
func BenchmarkAblationReadOnlyPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 1 << 16
		ctx := ablCtx()
		hbm := ctx.Space.AllocHBM(n * 4)
		pm := ctx.Space.AllocPM(n*4, 0)
		out := ctx.Space.AllocHBM(n * 4)
		run := func(name string, src uint64) sim.Duration {
			res := ctx.Dev.Launch(name, n/256, 256, func(t *gpu.Thread) {
				v := t.LoadU32(src + uint64(t.GlobalID())*4)
				t.StoreU32(out+uint64(t.GlobalID())*4, v*3)
			})
			return res.Elapsed
		}
		fromHBM := run("from-hbm", hbm)
		fromPM := run("from-pm", pm)
		b.ReportMetric(float64(fromPM)/float64(fromHBM), "hbm_placement_speedup_x")
	}
}

// BenchmarkAblationDoubleBuffer measures what the checkpoint's double
// buffering costs in time (the price of crash atomicity): a double-buffered
// gpmcp checkpoint versus a raw single-buffer copy+persist of the same data.
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 1 << 20
		ctx := ablCtx()
		src := ctx.Space.AllocHBM(n)
		cp, err := ctx.CPCreate("/pm/abl-cp", n, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := cp.Register(src, n, 0); err != nil {
			b.Fatal(err)
		}
		d1, err := cp.CheckpointGroup(0)
		if err != nil {
			b.Fatal(err)
		}
		// Raw single-buffer copy (not crash-atomic).
		raw := ctx.Space.AllocPM(n, 0)
		ctx.PersistBegin()
		res := ctx.Dev.Launch("raw-copy", n/16/256, 256, func(t *gpu.Thread) {
			off := uint64(t.GlobalID()) * 16
			var tmp [16]byte
			t.LoadBytes(src+off, tmp[:])
			t.StoreBytes(raw+off, tmp[:])
			gpmroot.Persist(t)
		})
		ctx.PersistEnd()
		b.ReportMetric(float64(d1)/float64(res.Elapsed), "atomicity_cost_x")
	}
}

// BenchmarkAblationDDIO quantifies the cost of correctness: persisting with
// DDIO disabled (durable) versus fencing with DDIO enabled (fast but NOT
// durable — the exact trap §3.1 warns about).
func BenchmarkAblationDDIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const threads, iters = 256, 128
		ctx := ablCtx()
		dst := ctx.Space.AllocPM(threads*iters*8, 0)
		kern := func(t *gpu.Thread) {
			for j := 0; j < iters; j++ {
				t.StoreU64(dst+uint64(j*threads+t.GlobalID())*8, 1)
				gpmroot.Persist(t)
			}
		}
		ctx.PersistBegin()
		durable := ctx.Dev.Launch("ddio-off", 1, threads, kern)
		ctx.PersistEnd()
		fast := ctx.Dev.Launch("ddio-on", 1, threads, kern)
		if !ctx.Space.Persisted(dst, 64) {
			// With DDIO back on the second kernel's lines sit in the LLC.
			b.ReportMetric(1, "ddio_on_not_durable")
		}
		b.ReportMetric(float64(durable.Elapsed)/float64(fast.Elapsed), "ddio_off_cost_x")
	}
}

// BenchmarkAblationBinomial is §4.3's poor-fit case: per-byte persist cost
// of the one-thread-per-block binomial pattern versus Black-Scholes'
// all-threads pattern.
func BenchmarkAblationBinomial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := workloads.NewEnv(workloads.GPM, workloads.QuickConfig())
		bi := &finance.Binomial{Steps: 32}
		n := 4096
		s := make([]float32, n)
		k := make([]float32, n)
		y := make([]float32, n)
		for j := range s {
			s[j], k[j], y[j] = 100, 95, 1
		}
		elapsed, _, err := bi.PriceOptions(env, s, k, y)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(elapsed)/float64(n*4), "binomial_ns_per_persisted_byte")
	}
}
