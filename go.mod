module github.com/gpm-sim/gpm

go 1.22
