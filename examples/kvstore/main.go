// Example: a persistent GPU key-value store with transactional batched
// SETs (§4.1). A batch of insertions runs as a transaction with HCL undo
// logging; the node crashes mid-batch; the Fig 6b recovery kernel rolls the
// store back to the last committed state.
package main

import (
	"fmt"
	"log"

	// Importing the experiments catalog registers the whole GPMbench suite,
	// so workloads resolve by their paper names through workloads.Run.
	_ "github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	cfg := workloads.QuickConfig()
	cfg.KVSBatches = 3

	// First, a clean run: three committed transactions.
	rep, err := workloads.Run("gpKVS", workloads.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d ops at %.2f Mops/s (%.1f KB persisted to PM)\n",
		rep.Ops, rep.Throughput()/1e6, float64(rep.PMBytes)/1024)

	// Now crash mid-way through the final batch and recover.
	crashed, err := workloads.Run("gpKVS",
		workloads.WithConfig(cfg),
		workloads.WithCrashAt(30000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash injected mid-transaction; undo-log recovery took %v (%.2f%% of op time)\n",
		crashed.Restore, crashed.RestoreFraction()*100)
	fmt.Println("durable store verified equal to the last committed state.")

	// The same store through CPU-assisted persistence, for contrast.
	capRep, err := workloads.Run("gpKVS",
		workloads.WithMode(workloads.CAPfs),
		workloads.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPM vs CAP-fs: %.1fx faster, %.1fx less data persisted\n",
		float64(capRep.OpTime)/float64(rep.OpTime),
		float64(capRep.PMBytes)/float64(rep.PMBytes))
}
