// Example: a GPU-accelerated relational table on PM (§4.1). Today's GPU
// databases run SELECTs but avoid transactions because they cannot persist
// from the kernel; with GPM the same table takes batched UPDATE
// transactions with HCL write-ahead logging — and survives a crash injected
// just before commit.
package main

import (
	"fmt"
	"log"

	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	cfg := workloads.QuickConfig()

	// SELECT: the read side GPU databases already do well.
	env := workloads.NewEnv(workloads.GPM, cfg)
	db := gpdb.New(gpdb.Update)
	if err := db.Setup(env); err != nil {
		log.Fatal(err)
	}
	q := gpdb.SelectQuery{PredCol: 0, AggCol: 1, Lo: 1_000_000}
	count, sum, err := db.RunSelect(env, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT count=%d sum=%d (verified against host scan)\n", count, sum)

	// UPDATE transaction: the write side GPM makes possible.
	env.BeginOps()
	if err := db.Run(env); err != nil {
		log.Fatal(err)
	}
	if err := db.Verify(env); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed a batched UPDATE transaction in %v (%.1f KB persisted)\n",
		env.OpTime(), float64(env.PMBytes())/1024)

	// And the same SELECT sees the new values.
	count2, sum2, err := db.RunSelect(env, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT after UPDATE: count=%d sum=%d\n", count2, sum2)

	// Crash just before commit; the undo log rolls the table back.
	rep, err := workloads.RunWorkload(gpdb.New(gpdb.Update),
		workloads.WithConfig(cfg),
		workloads.WithCrashAt(4000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash mid-transaction: undo recovery in %v, durable table verified\n",
		rep.Restore)
}
