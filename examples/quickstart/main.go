// Quickstart: map a PM file into the GPU's address space, write and persist
// from inside a kernel, crash the node, and observe that exactly the
// persisted data survived — the libGPM persistency primitives of §5.1 in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	gpm "github.com/gpm-sim/gpm"
)

func main() {
	// The root facade assembles a node from functional options; with none it
	// is the calibrated default. WithWorkers only bounds host goroutines —
	// simulated results are bit-identical for every value.
	ctx := gpm.NewContext(gpm.WithWorkers(4))

	// gpm_map: a PM-resident file, visible to GPU kernels through UVA.
	m, err := ctx.Map("/pm/quickstart", 64*64, true)
	if err != nil {
		log.Fatal(err)
	}

	// gpm_persist_begin: disable DDIO so in-kernel fences reach the ADR
	// persistence domain instead of stopping at the CPU's LLC.
	ctx.PersistBegin()
	res := ctx.Launch("hello", 1, 64, func(t *gpm.Thread) {
		// One 64B line per thread, so persistence is decided per thread.
		addr := m.Addr + uint64(t.GlobalID())*64
		t.StoreU64(addr, uint64(t.GlobalID()*t.GlobalID()))
		if t.GlobalID()%2 == 0 {
			gpm.Persist(t) // __threadfence_system: this thread's writes are now durable
		}
		// Odd threads never persist: their writes are in flight when the
		// power fails.
	})
	ctx.PersistEnd()
	fmt.Printf("kernel ran in %v simulated time\n", res.Elapsed)

	// Power failure: volatile memory and in-flight writes are lost.
	ctx.Crash()

	survived, lost := 0, 0
	for i := 0; i < 64; i++ {
		v := ctx.Space.ReadU64(m.Addr + uint64(i)*64)
		if i%2 == 0 {
			if v != uint64(i*i) {
				log.Fatalf("persisted slot %d corrupted: %d", i, v)
			}
			survived++
		} else if v == 0 {
			lost++
		}
	}
	fmt.Printf("after crash: %d persisted slots survived, %d unpersisted slots lost\n",
		survived, lost)
	fmt.Println("exactly what gpm_persist promised.")
}
