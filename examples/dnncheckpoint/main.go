// Example: checkpointing iterative GPU training with libGPM (§4.2, §5.3).
// An MLP trains on the GPU; every few iterations the weights and biases are
// checkpointed to PM through the double-buffered group facility. A crash
// mid-training restores the last consistent checkpoint and training
// resumes from that iteration instead of restarting.
//
// The run is instrumented with the telemetry layer: a per-epoch
// checkpoint-latency histogram (gpm.checkpoint_us) is printed at the end,
// showing the Fig 10-style distribution without any extra bookkeeping in
// the workload itself.
package main

import (
	"fmt"
	"log"

	"github.com/gpm-sim/gpm/internal/dnn"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	cfg := workloads.QuickConfig()
	cfg.DNNIters = 20
	cfg.DNNCkptEach = 5
	tel := telemetry.New()

	rep, err := workloads.RunWorkload(dnn.New(),
		workloads.WithConfig(cfg),
		workloads.WithTelemetry(tel))
	if err != nil {
		log.Fatal(err)
	}
	nCkpts := cfg.DNNIters / cfg.DNNCkptEach
	fmt.Printf("trained %d iterations in %v; %d checkpoints cost %v total (%v each)\n",
		cfg.DNNIters, rep.OpTime, nCkpts, rep.CkptTime, rep.CkptTime/4)

	// Crash late in training and resume from the last checkpoint.
	crashed, err := workloads.RunWorkload(dnn.New(),
		workloads.WithConfig(cfg),
		workloads.WithTelemetry(tel),
		workloads.WithCrashAt(2_500_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash injected; restored weights+biases from PM in %v and resumed\n",
		crashed.Restore)
	fmt.Println("loss trajectory verified: training improved despite the crash.")

	// Compare the checkpoint path against CPU-assisted persistence.
	capRep, err := workloads.RunWorkload(dnn.New(),
		workloads.WithMode(workloads.CAPmm),
		workloads.WithConfig(cfg),
		workloads.WithTelemetry(tel))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointing via GPM is %.1fx faster than via CAP-mm\n",
		float64(capRep.CkptTime)/float64(rep.CkptTime))

	// Per-epoch checkpoint latency distribution, straight from the
	// telemetry registry (every CheckpointGroup observed one sample).
	h := tel.Metrics.Histogram("gpm.checkpoint_us", telemetry.LatencyBucketsUS)
	fmt.Printf("\ncheckpoint latency histogram (%d epochs across all runs):\n", h.Count())
	var cum int64
	for _, b := range h.Buckets() {
		if b.Count == 0 {
			continue
		}
		cum += b.Count
		le := fmt.Sprintf("%dµs", b.Le)
		if b.Le == telemetry.InfBucket {
			le = "+inf"
		}
		fmt.Printf("  le=%-8s %3d  %s\n", le, cum, bar(b.Count))
	}
	if n := h.Count(); n > 0 {
		fmt.Printf("  mean %.1fµs over %d checkpoints\n", float64(h.Sum())/float64(n), n)
	}
}

func bar(n int64) string {
	out := ""
	for i := int64(0); i < n && i < 40; i++ {
		out += "#"
	}
	return out
}
