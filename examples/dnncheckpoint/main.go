// Example: checkpointing iterative GPU training with libGPM (§4.2, §5.3).
// An MLP trains on the GPU; every few iterations the weights and biases are
// checkpointed to PM through the double-buffered group facility. A crash
// mid-training restores the last consistent checkpoint and training
// resumes from that iteration instead of restarting.
package main

import (
	"fmt"
	"log"

	"github.com/gpm-sim/gpm/internal/dnn"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	cfg := workloads.QuickConfig()
	cfg.DNNIters = 20
	cfg.DNNCkptEach = 5

	rep, err := workloads.RunOne(dnn.New(), workloads.GPM, cfg)
	if err != nil {
		log.Fatal(err)
	}
	nCkpts := cfg.DNNIters / cfg.DNNCkptEach
	fmt.Printf("trained %d iterations in %v; %d checkpoints cost %v total (%v each)\n",
		cfg.DNNIters, rep.OpTime, nCkpts, rep.CkptTime, rep.CkptTime/4)

	// Crash late in training and resume from the last checkpoint.
	crashed, err := workloads.RunWithCrash(dnn.New(), workloads.GPM, cfg, 2_500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash injected; restored weights+biases from PM in %v and resumed\n",
		crashed.Restore)
	fmt.Println("loss trajectory verified: training improved despite the crash.")

	// Compare the checkpoint path against CPU-assisted persistence.
	capRep, err := workloads.RunOne(dnn.New(), workloads.CAPmm, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointing via GPM is %.1fx faster than via CAP-mm\n",
		float64(capRep.CkptTime)/float64(rep.CkptTime))
}
