// Example: native persistence (§4.3). BFS over a PM-resident result set
// persists the cost array and frontier queues in place, every iteration,
// from inside the kernel. After a crash the traversal RESUMES from the last
// persisted level — no recovery kernel, no recomputation of finished levels.
package main

import (
	"fmt"
	"log"

	"github.com/gpm-sim/gpm/internal/graph"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	cfg := workloads.QuickConfig()

	env := workloads.NewEnv(workloads.GPM, cfg)
	b := graph.New()
	if err := b.Setup(env); err != nil {
		log.Fatal(err)
	}
	env.BeginOps()

	// Run until a fault fires mid-traversal.
	if err := b.RunUntilCrash(env, 120_000); err != nil {
		log.Fatal(err)
	}
	env.Ctx.Crash()
	level := b.DurableLevel(env)
	fmt.Printf("power failed mid-search; PM holds a consistent frontier at level %d\n", level)

	// Resume: reload the read-only graph, restore the working cost array
	// from PM, and continue from the durable level.
	if err := b.Recover(env); err != nil {
		log.Fatal(err)
	}
	if err := b.Verify(env); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traversal of %d nodes resumed from level %d and verified against host BFS\n",
		b.Nodes(), level)
}
