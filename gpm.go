// Package gpm is a Go reproduction of "GPM: Leveraging Persistent Memory
// from a GPU" (Pandey, Kamath, Basu — ASPLOS 2022): libGPM, the GPMbench
// workload suite, the CAP baselines, and a full simulated substrate (GPU
// execution model, Optane PM device, LLC/DDIO, PCIe) that stands in for the
// paper's hardware. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// This root package is the public facade: it re-exports libGPM's API
// (persistency primitives, logging, checkpointing) and the pieces needed
// to write kernels against it. The heavy machinery lives in internal/.
//
// A minimal program:
//
//	ctx := gpm.NewContext() // or NewContext(gpm.WithWorkers(8), ...)
//	m, _ := ctx.Map("/pm/data", 4096, true)
//	ctx.PersistBegin()
//	ctx.Launch("k", 1, 32, func(t *gpm.Thread) {
//	    t.StoreU64(m.Addr+uint64(t.GlobalID())*8, 42)
//	    gpm.Persist(t)
//	})
//	ctx.PersistEnd()
package gpm

import (
	core "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/crash"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Core libGPM types (§5, Table 2).
type (
	// Context is one simulated node: GPU + CPU + PM + the run's timeline.
	Context = core.Context
	// Mapping is a PM-resident file mapped into the unified address
	// space (gpm_map).
	Mapping = core.Mapping
	// Log is the PM write-ahead log: HCL or conventional (gpmlog_*).
	Log = core.Log
	// Checkpoint is the group-based double-buffered checkpoint facility
	// (gpmcp_*).
	Checkpoint = core.Checkpoint

	// Thread is a GPU thread context inside a kernel.
	Thread = gpu.Thread
	// KernelResult reports one kernel execution.
	KernelResult = gpu.Result
	// CPUThread is a CPU worker inside a host phase.
	CPUThread = cpusim.Thread

	// Params holds every hardware constant of the timing model.
	Params = sim.Params
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// MemConfig sizes the simulated memory regions.
	MemConfig = memsys.Config

	// Telemetry bundles a metrics registry and a simulated-time span
	// tracer; attach one to a Context to observe a run (README
	// "Observability").
	Telemetry = telemetry.Telemetry
	// MetricsRegistry interns named counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// Tracer records simulated-time spans for Chrome-trace export.
	Tracer = telemetry.Tracer

	// FaultModel decides the fate of unpersisted PM lines at a power
	// failure (clean rollback, torn lines, torn words, reordering).
	FaultModel = pmem.FaultModel
	// CrashPlan is one adversarial crash-recovery schedule for a workload
	// run (crash point, fault model, nested recovery crashes).
	CrashPlan = workloads.CrashPlan
	// Campaign sweeps a workload's crash-schedule space deterministically,
	// fanning runs over a bounded worker pool (Campaign.Workers).
	Campaign = crash.Campaign
	// CampaignRun is one (workload, mode, model, crash point) record of a
	// campaign sweep.
	CampaignRun = crash.RunRecord
	// CampaignReport aggregates one workload's sweep.
	CampaignReport = crash.WorkloadCampaign
)

// FaultModels returns every built-in persistence fault model (the sweep
// default for Campaign.Models).
func FaultModels() []FaultModel { return pmem.Models() }

// FaultModelByName resolves a fault model from its Name (e.g. "torn-line").
func FaultModelByName(name string) (FaultModel, error) { return pmem.ModelByName(name) }

// NewTelemetry returns an empty Telemetry ready to attach to Contexts.
func NewTelemetry() *Telemetry { return telemetry.New() }

// ContextOption configures NewContext. The zero set of options reproduces
// NewDefaultContext: calibrated Table 3 parameters, default memory sizes, no
// telemetry, GOMAXPROCS execution workers.
type ContextOption func(*contextConfig)

type contextConfig struct {
	params  *Params
	mem     MemConfig
	tel     *Telemetry
	label   string
	workers int
}

// WithParams selects the timing-model parameter set.
func WithParams(p *Params) ContextOption {
	return func(c *contextConfig) { c.params = p }
}

// WithMemConfig sizes the simulated HBM/DRAM/PM regions.
func WithMemConfig(m MemConfig) ContextOption {
	return func(c *contextConfig) { c.mem = m }
}

// WithTelemetry attaches a telemetry handle; label names the trace process
// lane ("gpm" when empty).
func WithTelemetry(tel *Telemetry, label string) ContextOption {
	return func(c *contextConfig) { c.tel, c.label = tel, label }
}

// WithWorkers bounds how many GPU threadblocks execute on real goroutines at
// once (0 = GOMAXPROCS). Simulated results are bit-identical for every
// value; 1 is the determinism reference.
func WithWorkers(n int) ContextOption {
	return func(c *contextConfig) { c.workers = n }
}

// NewContext assembles a simulated node. With no options it is
// NewDefaultContext.
func NewContext(opts ...ContextOption) *Context {
	c := contextConfig{params: sim.Default(), mem: memsys.DefaultConfig()}
	for _, o := range opts {
		o(&c)
	}
	ctx := core.NewContext(c.params, c.mem)
	ctx.SetWorkers(c.workers)
	if c.tel != nil {
		label := c.label
		if label == "" {
			label = "gpm"
		}
		ctx.AttachTelemetry(c.tel, label)
	}
	return ctx
}

// NewDefaultContext assembles a node with the calibrated Table 3 defaults.
func NewDefaultContext() *Context { return core.NewDefaultContext() }

// DefaultParams returns the calibrated parameter set.
func DefaultParams() *Params { return sim.Default() }

// Persist is gpm_persist: ensure the calling GPU thread's prior writes are
// durable (a system-scoped fence; requires DDIO disabled via PersistBegin).
func Persist(t *Thread) { core.Persist(t) }
