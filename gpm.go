// Package gpm is a Go reproduction of "GPM: Leveraging Persistent Memory
// from a GPU" (Pandey, Kamath, Basu — ASPLOS 2022): libGPM, the GPMbench
// workload suite, the CAP baselines, and a full simulated substrate (GPU
// execution model, Optane PM device, LLC/DDIO, PCIe) that stands in for the
// paper's hardware. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// This root package is the public facade: it re-exports libGPM's API
// (persistency primitives, logging, checkpointing) and the pieces needed
// to write kernels against it. The heavy machinery lives in internal/.
//
// A minimal program:
//
//	ctx := gpm.NewDefaultContext()
//	m, _ := ctx.Map("/pm/data", 4096, true)
//	ctx.PersistBegin()
//	ctx.Launch("k", 1, 32, func(t *gpm.Thread) {
//	    t.StoreU64(m.Addr+uint64(t.GlobalID())*8, 42)
//	    gpm.Persist(t)
//	})
//	ctx.PersistEnd()
package gpm

import (
	core "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Core libGPM types (§5, Table 2).
type (
	// Context is one simulated node: GPU + CPU + PM + the run's timeline.
	Context = core.Context
	// Mapping is a PM-resident file mapped into the unified address
	// space (gpm_map).
	Mapping = core.Mapping
	// Log is the PM write-ahead log: HCL or conventional (gpmlog_*).
	Log = core.Log
	// Checkpoint is the group-based double-buffered checkpoint facility
	// (gpmcp_*).
	Checkpoint = core.Checkpoint

	// Thread is a GPU thread context inside a kernel.
	Thread = gpu.Thread
	// KernelResult reports one kernel execution.
	KernelResult = gpu.Result
	// CPUThread is a CPU worker inside a host phase.
	CPUThread = cpusim.Thread

	// Params holds every hardware constant of the timing model.
	Params = sim.Params
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// MemConfig sizes the simulated memory regions.
	MemConfig = memsys.Config

	// Telemetry bundles a metrics registry and a simulated-time span
	// tracer; attach one to a Context to observe a run (README
	// "Observability").
	Telemetry = telemetry.Telemetry
	// MetricsRegistry interns named counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// Tracer records simulated-time spans for Chrome-trace export.
	Tracer = telemetry.Tracer
)

// NewTelemetry returns an empty Telemetry ready to attach to Contexts.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewContext assembles a simulated node.
func NewContext(params *Params, cfg MemConfig) *Context { return core.NewContext(params, cfg) }

// NewDefaultContext assembles a node with the calibrated Table 3 defaults.
func NewDefaultContext() *Context { return core.NewDefaultContext() }

// DefaultParams returns the calibrated parameter set.
func DefaultParams() *Params { return sim.Default() }

// Persist is gpm_persist: ensure the calling GPU thread's prior writes are
// durable (a system-scoped fence; requires DDIO disabled via PersistBegin).
func Persist(t *Thread) { core.Persist(t) }
