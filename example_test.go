package gpm_test

import (
	"fmt"

	gpm "github.com/gpm-sim/gpm"
)

// Example reproduces the README quickstart: map a PM file, persist from a
// kernel, and survive a power failure. NewContext with no options is the
// calibrated default node; see WithParams/WithMemConfig/WithTelemetry/
// WithWorkers for the configurable form.
func Example() {
	ctx := gpm.NewContext()
	m, err := ctx.Map("/pm/data", 4096, true)
	if err != nil {
		panic(err)
	}
	ctx.PersistBegin()
	ctx.Launch("k", 1, 32, func(t *gpm.Thread) {
		t.StoreU64(m.Addr+uint64(t.GlobalID())*8, 42)
		gpm.Persist(t)
	})
	ctx.PersistEnd()
	ctx.Crash()
	fmt.Println(ctx.Space.ReadU64(m.Addr + 8*31))
	// Output: 42
}

// ExampleContext_LogCreateHCL shows transactional undo logging from a
// kernel: log the old value, update, persist — then roll back.
func ExampleContext_LogCreateHCL() {
	ctx := gpm.NewContext()
	data, _ := ctx.Map("/pm/tx", 64*32, true)
	log, _ := ctx.LogCreateHCL("/pm/txlog", 1<<20, 1, 32)

	ctx.PersistBegin()
	ctx.Launch("tx", 1, 32, func(t *gpm.Thread) {
		addr := data.Addr + uint64(t.GlobalID())*64
		old := make([]byte, 8) // logs the prior value (zero here)
		if err := log.Insert(t, old, -1); err != nil {
			panic(err)
		}
		t.StoreU64(addr, 7)
		gpm.Persist(t)
	})
	// Crash before commit: undo from the durable log.
	ctx.Crash()
	log2, _ := ctx.LogOpen("/pm/txlog")
	ctx.Launch("undo", 1, 32, func(t *gpm.Thread) {
		e := make([]byte, 8)
		if log2.Read(t, e, -1) != nil {
			return
		}
		t.StoreU64(data.Addr+uint64(t.GlobalID())*64, 0) // restore old
		gpm.Persist(t)
		_ = log2.Remove(t, 8, -1)
	})
	ctx.PersistEnd()
	ctx.Crash()
	fmt.Println(ctx.Space.ReadU64(data.Addr))
	// Output: 0
}
